"""Wire protocol of the cluster: length-prefixed JSON frames.

Every message between a :class:`~repro.cluster.coordinator.ClusterCoordinator`
and its peers is one *frame*: a 4-byte big-endian payload length followed
by a UTF-8 JSON object ``{"type": <frame type>, "payload": {...}}``.
JSON keeps the protocol debuggable with ``nc``/``tcpdump`` and — because
Python's ``json`` round-trips floats through ``repr`` — preserves every
float bit-exactly, which is what lets a cluster campaign stay
byte-identical to local execution.

Frame types (see the coordinator/worker/client modules for sequencing):

* ``HELLO`` — handshake, first frame in both directions.  Carries the
  protocol version and the peer's role (``worker`` / ``live`` /
  ``watch``); a version mismatch is answered with ``BYE`` and a close.
* ``HEARTBEAT`` — keepalive; any frame refreshes a peer's liveness, a
  heartbeat is just the cheapest one.
* ``DISPATCH`` — coordinator → worker: one scenario to run (spec,
  detector config, scenario index, optional trace/cache dirs).
* ``OUTCOME`` — worker → coordinator: the scenario's
  :class:`~repro.fleet.executor.SessionOutcome` (or an error string).
* ``DETECTION`` — live supervisor → coordinator: one batch of completed
  window detections ``(session_id, detections, chains, watermark_us)``.
* ``SNAPSHOT`` — coordinator → watch clients: a periodic
  :class:`~repro.live.aggregator.FleetSnapshot` rollup.
* ``SUBMIT`` / ``STATUS`` / ``CANCEL`` / ``FETCH`` — control plane
  (role ``control``): queue a campaign, inspect the queue, cancel a
  campaign, fetch a finished campaign's outcomes.  Each carries a
  client-chosen ``req`` id.
* ``ACK`` — coordinator → control client: the one reply to a control
  request, echoing its ``req`` id with ``{"ok": ...}``.
* ``BYE`` — graceful close (with a reason), either direction.

A coordinator started with an auth token requires every HELLO to carry
a matching ``token`` field (checked in constant time via
:func:`auth_ok`); with a TLS context (:func:`server_ssl_context` /
:func:`client_ssl_context`) the whole link is encrypted.

The dataclass payloads that cross the wire (:class:`ScenarioSpec`,
:class:`DetectorConfig`, :class:`WindowDetection`) are encoded through
the canonical :mod:`repro.schema` registry — the same serde the fleet
JSONL and live snapshots use, so no peer can drift apart on
serialization details.  The ``*_to_json`` / ``*_from_json`` names below
are kept as thin compatibility wrappers that translate
:class:`~repro.errors.SchemaError` into
:class:`ClusterProtocolError` (a malformed payload is a protocol
offence on this layer).
"""

from __future__ import annotations

import asyncio
import hmac
import json
import ssl
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.detector import DetectorConfig, WindowDetection
from repro.errors import ClusterProtocolError, SchemaError
from repro.fleet.scenarios import ScenarioSpec
from repro import schema

#: Bump on any incompatible frame/payload change.  Peers exchange it in
#: HELLO and refuse to talk across versions.  v2: payloads are encoded
#: by the canonical repro.schema registry and SNAPSHOT frames carry a
#: schema stamp — pre-2.0 peers (whose decoders reject unknown fields)
#: are refused at handshake instead of crashing on the first frame.
#: v3: DISPATCH/OUTCOME frames carry string campaign ids (the journal's
#: key) instead of integer epochs, and the control plane (SUBMIT /
#: STATUS / CANCEL / FETCH / ACK, role ``control``) exists — a v2 peer
#: would silently mis-key outcomes, so it is refused at handshake.
PROTOCOL_VERSION = 3

#: Length prefix size and the sanity cap on one frame's payload.  A
#: detection batch for a long chunk is tens of KB; 32 MiB leaves room
#: for pathological campaigns while rejecting garbage prefixes (e.g. a
#: peer that is not speaking this protocol at all).
LENGTH_BYTES = 4
MAX_FRAME_BYTES = 32 * 1024 * 1024

# Frame types.
HELLO = "HELLO"
HEARTBEAT = "HEARTBEAT"
DISPATCH = "DISPATCH"
OUTCOME = "OUTCOME"
DETECTION = "DETECTION"
SNAPSHOT = "SNAPSHOT"
BYE = "BYE"
# Control plane (role ``control``): queue management over the same
# listener.  Every request carries a client-chosen ``req`` id; the
# coordinator answers with one ACK echoing it.
SUBMIT = "SUBMIT"
STATUS = "STATUS"
CANCEL = "CANCEL"
FETCH = "FETCH"
ACK = "ACK"

FRAME_TYPES = frozenset(
    (
        HELLO,
        HEARTBEAT,
        DISPATCH,
        OUTCOME,
        DETECTION,
        SNAPSHOT,
        BYE,
        SUBMIT,
        STATUS,
        CANCEL,
        FETCH,
        ACK,
    )
)

#: Peer roles a HELLO may announce.
ROLE_WORKER = "worker"
ROLE_LIVE = "live"
ROLE_WATCH = "watch"
ROLE_CONTROL = "control"
ROLES = frozenset((ROLE_WORKER, ROLE_LIVE, ROLE_WATCH, ROLE_CONTROL))


@dataclass(frozen=True)
class Frame:
    """One decoded protocol frame."""

    type: str
    payload: dict = field(default_factory=dict)


# -- encoding / decoding -------------------------------------------------------


def encode_frame(frame: Frame) -> bytes:
    """Serialize a frame to its on-wire bytes (length prefix included)."""
    body = json.dumps(
        {"type": frame.type, "payload": frame.payload},
        separators=(",", ":"),
    ).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ClusterProtocolError(
            f"frame too large to send: {len(body)} bytes "
            f"(max {MAX_FRAME_BYTES})"
        )
    return len(body).to_bytes(LENGTH_BYTES, "big") + body


def decode_frame(body: bytes) -> Frame:
    """Decode one frame body (the bytes after the length prefix)."""
    try:
        data = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ClusterProtocolError(f"undecodable frame body: {exc}")
    if not isinstance(data, dict):
        raise ClusterProtocolError(
            f"frame body is not an object: {type(data).__name__}"
        )
    frame_type = data.get("type")
    if frame_type not in FRAME_TYPES:
        raise ClusterProtocolError(f"unknown frame type {frame_type!r}")
    payload = data.get("payload", {})
    if not isinstance(payload, dict):
        raise ClusterProtocolError(
            f"frame payload is not an object: {type(payload).__name__}"
        )
    return Frame(type=frame_type, payload=payload)


async def send_frame(
    writer: asyncio.StreamWriter, frame_type: str, payload: dict
) -> None:
    """Encode and send one frame, draining the transport."""
    writer.write(encode_frame(Frame(frame_type, payload)))
    await writer.drain()


async def read_frame(reader: asyncio.StreamReader) -> Optional[Frame]:
    """Read one frame; ``None`` on clean EOF at a frame boundary.

    EOF in the middle of a frame, an oversized length prefix, or an
    undecodable body raise :class:`ClusterProtocolError`.
    """
    try:
        header = await reader.readexactly(LENGTH_BYTES)
    except asyncio.IncompleteReadError as exc:
        if exc.partial:
            raise ClusterProtocolError(
                "connection closed mid-frame (truncated length prefix)"
            )
        return None  # clean EOF between frames
    length = int.from_bytes(header, "big")
    if length == 0 or length > MAX_FRAME_BYTES:
        raise ClusterProtocolError(
            f"invalid frame length {length} (max {MAX_FRAME_BYTES}); "
            f"peer is probably not speaking the cluster protocol"
        )
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise ClusterProtocolError(
            "connection closed mid-frame (truncated body)"
        )
    return decode_frame(body)


# -- link hardening: shared-token auth and TLS ---------------------------------


def auth_ok(expected: Optional[str], presented: object) -> bool:
    """Constant-time check of a HELLO's auth token against the secret.

    ``expected is None`` means the listener runs open (the loopback /
    trusted-LAN default) and every peer passes.
    """
    if expected is None:
        return True
    if not isinstance(presented, str):
        return False
    return hmac.compare_digest(
        expected.encode("utf-8"), presented.encode("utf-8")
    )


def server_ssl_context(certfile: str, keyfile: str) -> "ssl.SSLContext":
    """TLS context for the coordinator's listener."""
    context = ssl.SSLContext(ssl.PROTOCOL_TLS_SERVER)
    context.load_cert_chain(certfile, keyfile)
    return context


def client_ssl_context(cafile: Optional[str] = None) -> "ssl.SSLContext":
    """TLS context for workers/forwarders/watchers dialing a coordinator.

    With an explicit *cafile* (the usual self-signed operational cert)
    the chain is verified against it but hostname checking is off —
    cluster certs are pinned by file, not by DNS name.  Without one,
    the system trust store applies with full hostname verification.
    """
    if cafile is not None:
        context = ssl.SSLContext(ssl.PROTOCOL_TLS_CLIENT)
        context.load_verify_locations(cafile)
        context.check_hostname = False
        context.verify_mode = ssl.CERT_REQUIRED
        return context
    return ssl.create_default_context()


def hello_payload(**extra: object) -> dict:
    """The versions every HELLO must announce, plus caller extras."""
    payload = {"version": PROTOCOL_VERSION, "schema": schema.SCHEMA_VERSION}
    payload.update(extra)
    return payload


def check_hello(frame: Optional[Frame], *, expect_role: bool) -> dict:
    """Validate a handshake frame; return its payload.

    Raises :class:`ClusterProtocolError` on a missing/foreign HELLO, a
    protocol or payload-schema version mismatch, or
    (``expect_role=True``, the server side) an unknown role.
    """
    if frame is None or frame.type != HELLO:
        got = "EOF" if frame is None else frame.type
        raise ClusterProtocolError(f"expected HELLO handshake, got {got}")
    version = frame.payload.get("version")
    if version != PROTOCOL_VERSION:
        raise ClusterProtocolError(
            f"protocol version mismatch: peer speaks {version!r}, "
            f"this side speaks {PROTOCOL_VERSION}"
        )
    # Refuse payload-schema mismatches at handshake, where the
    # diagnosis is cheap — not at the first payload whose decode would
    # otherwise fail weirdly.  A HELLO without a stamp is treated as
    # schema 1 (the first stamped release), so a peer that omits it is
    # still refused the moment this side's schema moves past 1.
    schema_version = frame.payload.get("schema")
    if schema_version is None:
        schema_version = 1
    if schema_version != schema.SCHEMA_VERSION:
        raise ClusterProtocolError(
            f"schema version mismatch: peer speaks schema "
            f"{schema_version!r} vs {schema.SCHEMA_VERSION} on this side"
        )
    if expect_role and frame.payload.get("role") not in ROLES:
        raise ClusterProtocolError(
            f"unknown peer role {frame.payload.get('role')!r}; "
            f"options: {', '.join(sorted(ROLES))}"
        )
    return frame.payload


# -- dataclass codecs (canonical schema, protocol-flavoured errors) ------------


def _frame_decode(decode: Callable, what: str) -> Callable:
    """Wrap a schema decoder: malformed payloads are protocol offences."""

    def wrapper(data):
        try:
            return decode(data)
        except SchemaError as exc:
            raise ClusterProtocolError(f"malformed {what}: {exc}")

    wrapper.__name__ = decode.__name__
    return wrapper


def spec_to_json(spec: ScenarioSpec) -> dict:
    """ScenarioSpec → canonical wire object (nested impairment included)."""
    return schema.scenario_spec_to_wire(spec)


#: Rebuild a ScenarioSpec (tuples restored from JSON lists).
spec_from_json = _frame_decode(schema.scenario_spec_from_wire, "scenario spec")


def detector_config_to_json(config: Optional[DetectorConfig]) -> Optional[dict]:
    """DetectorConfig → canonical wire object (None passes through)."""
    return schema.detector_config_to_wire(config)


detector_config_from_json = _frame_decode(
    schema.detector_config_from_wire, "detector config"
)


def detections_to_json(detections: Sequence[WindowDetection]) -> List[dict]:
    """WindowDetections → JSON list (floats round-trip bit-exactly)."""
    return schema.detections_to_wire(detections)


detections_from_json = _frame_decode(
    schema.detections_from_wire, "detection batch"
)


def chains_to_json(chains: Sequence[Tuple[str, ...]]) -> List[List[str]]:
    return schema.chains_to_wire(chains)


chains_from_json = _frame_decode(schema.chains_from_wire, "chain list")


__all__ = [
    "ACK",
    "BYE",
    "CANCEL",
    "DETECTION",
    "DISPATCH",
    "FETCH",
    "FRAME_TYPES",
    "Frame",
    "HEARTBEAT",
    "HELLO",
    "LENGTH_BYTES",
    "MAX_FRAME_BYTES",
    "OUTCOME",
    "PROTOCOL_VERSION",
    "ROLES",
    "ROLE_CONTROL",
    "ROLE_LIVE",
    "ROLE_WATCH",
    "ROLE_WORKER",
    "SNAPSHOT",
    "STATUS",
    "SUBMIT",
    "auth_ok",
    "chains_from_json",
    "client_ssl_context",
    "server_ssl_context",
    "chains_to_json",
    "check_hello",
    "decode_frame",
    "detections_from_json",
    "detections_to_json",
    "detector_config_from_json",
    "detector_config_to_json",
    "encode_frame",
    "hello_payload",
    "read_frame",
    "send_frame",
    "spec_from_json",
    "spec_to_json",
]
