"""RRC connection state machine with disruptive release/re-establishment.

The paper observed (uniquely on the T-Mobile 15 MHz FDD cell) RRC Release
followed by re-establishment *during active data transfer*, halting all
PHY transmission for ≈300 ms while the application keeps sending — so
packets pile up in the UE buffer and one-way delay spikes to ≈400 ms
(§5.3, Fig. 19).  A new RNTI is assigned on every re-establishment, which
is exactly how Domino's event condition 20 detects these events.

Triggers in the wild are unknown (inactivity timers / policy / radio-link
failures); we model them as a Poisson process plus optional scripted
transition times.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np


@dataclass(frozen=True)
class RrcTransition:
    """One release + re-establishment cycle."""

    release_us: int
    reconnect_us: int
    old_rnti: int
    new_rnti: int

    @property
    def outage_us(self) -> int:
        return self.reconnect_us - self.release_us


class RrcState:
    """RRC states relevant to data transfer."""

    CONNECTED = "connected"
    TRANSITIONING = "transitioning"


@dataclass
class RrcManager:
    """Per-UE RRC state with random and scripted transitions.

    Args:
        flap_rate_per_min: Poisson rate of spontaneous release events.
        outage_us: how long each transition halts data transfer.
        scripted_releases_us: explicit release times (for reproducible
            Fig. 19 traces).
        initial_rnti: starting MAC identifier.
        seed: RNG seed.
    """

    flap_rate_per_min: float = 0.0
    outage_us: int = 300_000
    scripted_releases_us: List[int] = field(default_factory=list)
    initial_rnti: int = 17_000
    seed: int = 0

    def __post_init__(self) -> None:
        self._rng = np.random.default_rng(self.seed)
        self._rnti = self.initial_rnti
        self._transition_until_us: Optional[int] = None
        self._next_random_release_us = self._draw_next_release(0)
        self._scripted = sorted(self.scripted_releases_us)
        self.transitions: List[RrcTransition] = []

    def _draw_next_release(self, after_us: int) -> Optional[int]:
        if self.flap_rate_per_min <= 0:
            return None
        rate_per_us = self.flap_rate_per_min / 60e6
        gap = float(self._rng.exponential(1.0 / rate_per_us))
        return after_us + int(gap)

    def _next_new_rnti(self) -> int:
        # RNTIs are 16-bit values in real cells; draw a fresh random one
        # distinct from the current identifier.  Stay below 40000 — the
        # simulator reserves higher values for cross-traffic UEs (see
        # repro.mac.crosstraffic), and telemetry uses that convention to
        # tell the experiment UE apart across RRC transitions.
        while True:
            candidate = int(self._rng.integers(1_000, 39_000))
            if candidate != self._rnti:
                return candidate

    def _begin_transition(self, now_us: int) -> None:
        old = self._rnti
        self._rnti = self._next_new_rnti()
        self._transition_until_us = now_us + self.outage_us
        self.transitions.append(
            RrcTransition(
                release_us=now_us,
                reconnect_us=now_us + self.outage_us,
                old_rnti=old,
                new_rnti=self._rnti,
            )
        )

    def step(self, now_us: int) -> None:
        """Advance the state machine to *now_us* (call once per slot)."""
        if (
            self._transition_until_us is not None
            and now_us >= self._transition_until_us
        ):
            self._transition_until_us = None
        if self._transition_until_us is not None:
            return  # already transitioning; new triggers are absorbed
        while self._scripted and self._scripted[0] <= now_us:
            release = self._scripted.pop(0)
            self._begin_transition(max(release, now_us))
            return
        if (
            self._next_random_release_us is not None
            and now_us >= self._next_random_release_us
        ):
            self._begin_transition(now_us)
            self._next_random_release_us = self._draw_next_release(
                now_us + self.outage_us
            )

    def is_connected(self, now_us: int) -> bool:
        """True if the UE can exchange data at *now_us*."""
        if self._transition_until_us is None:
            return True
        return now_us >= self._transition_until_us

    @property
    def state(self) -> str:
        return (
            RrcState.TRANSITIONING
            if self._transition_until_us is not None
            else RrcState.CONNECTED
        )

    @property
    def rnti(self) -> int:
        """Current RNTI (changes across every transition)."""
        return self._rnti
