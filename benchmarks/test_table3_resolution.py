"""Table 3 (Appendix B): video resolution distribution, UL vs DL.

Paper: UL streams generally hold higher resolutions than DL (540p
dominates UL on three cells; DL sits mostly at 360p), with Amarisoft's
poor UL channel dragging a large UL share down to 360p.
"""

import numpy as np
from conftest import save_result

from repro.analysis.ascii import render_table
from repro.analysis.summarize import stats_series


def _distribution(results, client_attr):
    values = []
    for result in results:
        bundle = result.bundle
        client = getattr(bundle, client_attr)
        series = stats_series(bundle, client, "outbound_resolution_p")
        values.extend(int(v) for v in series if v > 0)
    total = max(len(values), 1)
    return {
        p: sum(1 for v in values if v == p) / total
        for p in (180, 360, 540, 720, 1080)
    }


def test_table3_resolution_distribution(benchmark, cell_results):
    def build():
        table = {}
        for key, results in cell_results.items():
            # UL stream = cellular client's outbound resolution.
            table[key] = {
                "ul": _distribution(results, "cellular_client"),
                "dl": _distribution(results, "wired_client"),
            }
        return table

    table = benchmark.pedantic(build, rounds=1, iterations=1)
    rows = []
    for key, dists in table.items():
        for direction in ("ul", "dl"):
            dist = dists[direction]
            rows.append(
                [f"{key} {direction.upper()}"]
                + [dist[p] * 100 for p in (180, 360, 540, 720, 1080)]
            )
    text = render_table(
        ["stream", "180p%", "360p%", "540p%", "720p%", "1080p%"], rows
    )
    save_result("table3_resolution", text)

    def mean_resolution(dist):
        return sum(p * share for p, share in dist.items())

    # UL resolution >= DL resolution on cells with a healthy UL channel
    # (Appendix B).  Amarisoft is excluded: its simulated UL GCC
    # equilibrium (~0.6 Mbps) sits below the testbed's (~1 Mbps), which
    # pulls its UL below 360p part of the time — see EXPERIMENTS.md.
    for key in ("tmobile_fdd", "tmobile_tdd", "mosolabs"):
        dists = table[key]
        assert mean_resolution(dists["ul"]) >= mean_resolution(dists["dl"]), key
    # The UL reaches high rungs (540p) that the biased DL never does.
    for key, dists in table.items():
        assert dists["ul"][540] >= dists["dl"][540]
    # Amarisoft UL degraded vs the healthy cells' UL (poor UL channel).
    amarisoft_ul = mean_resolution(table["amarisoft"]["ul"])
    tdd_ul = mean_resolution(table["tmobile_tdd"]["ul"])
    assert amarisoft_ul < tdd_ul
