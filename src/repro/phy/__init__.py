"""5G NR physical-layer models.

This subpackage provides the PHY substrate the paper's measurements come
from: the time-frequency resource grid (:mod:`repro.phy.grid`), the
modulation-and-coding-scheme and transport-block-size tables
(:mod:`repro.phy.mcs`), stochastic wireless channel models
(:mod:`repro.phy.channel`), and cell-level configuration
(:mod:`repro.phy.cell`).
"""

from repro.phy.cell import CellConfig, Duplex
from repro.phy.channel import ChannelModel, ChannelSample, FadeEvent
from repro.phy.grid import ResourceGrid, SlotType
from repro.phy.mcs import (
    MAX_MCS,
    McsEntry,
    bler,
    cqi_from_sinr,
    mcs_from_cqi,
    mcs_table,
    required_sinr_db,
    transport_block_size_bits,
)

__all__ = [
    "CellConfig",
    "Duplex",
    "ChannelModel",
    "ChannelSample",
    "FadeEvent",
    "ResourceGrid",
    "SlotType",
    "MAX_MCS",
    "McsEntry",
    "bler",
    "cqi_from_sinr",
    "mcs_from_cqi",
    "mcs_table",
    "required_sinr_db",
    "transport_block_size_bits",
]
