"""Adaptive jitter buffers for video frames and audio packets.

The receiver holds media briefly before playback to absorb network
jitter (§6.1).  The buffer's target delay adapts: it grows quickly when
frames arrive later than their playout time and decays slowly when the
network is stable — trading end-to-end (mouth-to-ear) latency against
smoothness, exactly the tension Figs. 3 and 20 illustrate.

Semantics used by the stats (matching the paper's event conditions):

* *jitter-buffer delay* of a played frame = how long it waited in the
  buffer (playout time − complete-arrival time, clamped at 0).  A value
  of 0 means the buffer drained — the frame was played the instant it
  arrived (Table 5, row 4).
* *freeze*: playout stalled longer than max(3 inter-frame intervals,
  150 ms) waiting for the next frame (the WebRTC freeze definition).
* audio packets missing at their playout tick are *concealed* (replaced
  by synthesized samples, §2.1/Fig. 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass
class PlayedFrame:
    """Record of one frame leaving the jitter buffer."""

    frame_id: int
    capture_us: int
    complete_us: int
    played_us: int
    resolution_p: int

    @property
    def buffer_delay_ms(self) -> float:
        return max(0.0, (self.played_us - self.complete_us) / 1000.0)


@dataclass
class _PendingFrame:
    capture_us: int
    n_packets: int
    received: int = 0
    complete_us: Optional[int] = None
    resolution_p: int = 0


@dataclass
class VideoJitterBuffer:
    """Frame-level adaptive jitter buffer with freeze accounting.

    Args:
        base_delay_ms: minimum target delay.
        jitter_multiplier: how many jitter std-devs of headroom to keep.
        decay_ms_per_s: how fast the target delay shrinks when stable.
    """

    base_delay_ms: float = 70.0
    jitter_multiplier: float = 5.0
    decay_ms_per_s: float = 3.0
    max_delay_ms: float = 1_000.0

    target_delay_ms: float = field(init=False)
    #: Incomplete frames older than this are abandoned (decoder would
    #: drop them and request a keyframe); keeps playout from deadlocking
    #: on a lost packet.
    incomplete_timeout_us: int = 600_000

    _frames: Dict[int, _PendingFrame] = field(default_factory=dict)
    _next_frame_id: Optional[int] = None
    _jitter_ms: float = 5.0
    _last_complete: Optional[Tuple[int, int]] = None  # (capture, complete)
    _last_played_us: Optional[int] = None
    _last_decay_us: int = 0
    _frozen_since_us: Optional[int] = None
    _max_finished_frame_id: int = -1
    played: List[PlayedFrame] = field(default_factory=list)
    total_freeze_us: int = 0
    freeze_count: int = 0
    dropped_frames: int = 0
    frame_interval_us: int = 33_333

    def __post_init__(self) -> None:
        self.target_delay_ms = self.base_delay_ms

    # -- ingest ---------------------------------------------------------------

    def on_packet(
        self,
        frame_id: int,
        capture_us: int,
        packets_in_frame: int,
        resolution_p: int,
        arrival_us: int,
    ) -> None:
        """Register one video packet arrival."""
        if frame_id <= self._max_finished_frame_id:
            return  # frame already played or abandoned
        frame = self._frames.get(frame_id)
        if frame is None:
            frame = _PendingFrame(
                capture_us=capture_us,
                n_packets=packets_in_frame,
                resolution_p=resolution_p,
            )
            self._frames[frame_id] = frame
            if self._next_frame_id is None or frame_id < self._next_frame_id:
                if self._last_played_us is None:
                    self._next_frame_id = frame_id
        frame.received += 1
        if frame.received >= frame.n_packets and frame.complete_us is None:
            frame.complete_us = arrival_us
            self._update_jitter(frame)

    def _update_jitter(self, frame: _PendingFrame) -> None:
        if self._last_complete is not None:
            prev_capture, prev_complete = self._last_complete
            variation_ms = abs(
                (frame.complete_us - prev_complete)
                - (frame.capture_us - prev_capture)
            ) / 1000.0
            # RTP-style jitter EWMA (1/16 gain).
            self._jitter_ms += (variation_ms - self._jitter_ms) / 16.0
        self._last_complete = (frame.capture_us, frame.complete_us)

    # -- playout ------------------------------------------------------------------

    def step(self, now_us: int) -> List[PlayedFrame]:
        """Advance the playout clock to *now_us*; returns played frames."""
        self._decay_target(now_us)
        out: List[PlayedFrame] = []
        while True:
            frame_id = self._due_frame_id()
            if frame_id is None:
                break
            frame = self._frames[frame_id]
            playout_us = frame.capture_us + int(self.target_delay_ms * 1000)
            if frame.complete_us is None:
                if now_us - frame.capture_us > self.incomplete_timeout_us:
                    # Abandon the frame; playout moves on (decoder drop).
                    self.dropped_frames += 1
                    self._max_finished_frame_id = max(
                        self._max_finished_frame_id, frame_id
                    )
                    del self._frames[frame_id]
                    continue
                break  # next frame in order is incomplete
            effective_playout = max(playout_us, frame.complete_us)
            if now_us < effective_playout:
                break  # not yet due
            self._play(frame_id, frame, effective_playout, now_us)
            out.append(self.played[-1])
        # Playout stalled — whether the next frame is incomplete or has
        # not even arrived yet (an empty buffer is still a freeze).
        self._note_frozen(now_us)
        return out

    def _due_frame_id(self) -> Optional[int]:
        if not self._frames:
            return None
        return min(self._frames.keys())

    def _play(
        self, frame_id: int, frame: _PendingFrame, playout_us: int, now_us: int
    ) -> None:
        was_late = frame.complete_us > (
            frame.capture_us + int(self.target_delay_ms * 1000)
        )
        if was_late:
            # Grow the target so the next frames are buffered longer.
            needed_ms = (frame.complete_us - frame.capture_us) / 1000.0
            self.target_delay_ms = min(
                self.max_delay_ms, max(self.target_delay_ms, needed_ms)
            )
        if self._frozen_since_us is not None:
            freeze = max(0, playout_us - self._frozen_since_us)
            self.total_freeze_us += freeze
            self._frozen_since_us = None
        self.played.append(
            PlayedFrame(
                frame_id=frame_id,
                capture_us=frame.capture_us,
                complete_us=frame.complete_us,
                played_us=playout_us,
                resolution_p=frame.resolution_p,
            )
        )
        self._last_played_us = playout_us
        self._max_finished_frame_id = max(self._max_finished_frame_id, frame_id)
        del self._frames[frame_id]

    def _note_frozen(self, now_us: int) -> None:
        threshold_us = max(3 * self.frame_interval_us, 150_000)
        if self._last_played_us is None:
            return
        if now_us - self._last_played_us < threshold_us:
            return
        if self._frozen_since_us is None:
            self._frozen_since_us = self._last_played_us + threshold_us
            self.freeze_count += 1

    def _decay_target(self, now_us: int) -> None:
        dt_s = max(0, now_us - self._last_decay_us) / 1e6
        self._last_decay_us = now_us
        floor = self.base_delay_ms + self.jitter_multiplier * self._jitter_ms
        if self.target_delay_ms > floor:
            self.target_delay_ms = max(
                floor, self.target_delay_ms - self.decay_ms_per_s * dt_s
            )

    # -- stats -------------------------------------------------------------------

    def is_frozen(self, now_us: int) -> bool:
        if self._frozen_since_us is None:
            return False
        return now_us >= self._frozen_since_us

    def current_delay_ms(self) -> float:
        """Jitter-buffer delay of the most recently played frame."""
        if not self.played:
            return self.target_delay_ms
        return self.played[-1].buffer_delay_ms

    def minimum_delay_ms(self) -> float:
        """The adaptive floor (Fig. 3's 'minimum jitter-buffer delay')."""
        return self.base_delay_ms + self.jitter_multiplier * self._jitter_ms

    def fps_over(self, now_us: int, window_us: int = 1_000_000) -> float:
        cutoff = now_us - window_us
        count = sum(1 for f in self.played if f.played_us >= cutoff)
        return count * 1e6 / window_us

    def last_resolution(self) -> int:
        if not self.played:
            return 0
        return self.played[-1].resolution_p


@dataclass
class AudioJitterBuffer:
    """Packet-level adaptive audio buffer with concealment accounting.

    Audio packets carry ``samples_per_packet`` samples (20 ms at 48 kHz =
    960).  A packet missing at its playout tick is concealed.
    """

    packet_interval_us: int = 20_000
    samples_per_packet: int = 960
    base_delay_ms: float = 40.0
    jitter_multiplier: float = 4.0
    decay_ms_per_s: float = 3.0
    max_delay_ms: float = 500.0

    target_delay_ms: float = field(init=False)
    _arrivals: Dict[int, int] = field(default_factory=dict)  # seq -> arrival
    _captures: Dict[int, int] = field(default_factory=dict)
    _next_play_seq: Optional[int] = None
    _jitter_ms: float = 2.0
    _last_arrival: Optional[Tuple[int, int]] = None
    _last_decay_us: int = 0
    concealed_samples: int = 0
    total_samples: int = 0
    played_packets: int = 0
    _last_buffer_delay_ms: float = 0.0

    def __post_init__(self) -> None:
        self.target_delay_ms = self.base_delay_ms

    def on_packet(self, audio_seq: int, capture_us: int, arrival_us: int) -> None:
        if self._next_play_seq is not None and audio_seq < self._next_play_seq:
            return  # arrived after its playout tick passed; already concealed
        self._arrivals[audio_seq] = arrival_us
        self._captures[audio_seq] = capture_us
        if self._last_arrival is not None:
            prev_capture, prev_arrival = self._last_arrival
            variation_ms = abs(
                (arrival_us - prev_arrival) - (capture_us - prev_capture)
            ) / 1000.0
            self._jitter_ms += (variation_ms - self._jitter_ms) / 16.0
        self._last_arrival = (capture_us, arrival_us)
        if self._next_play_seq is None:
            self._next_play_seq = audio_seq

    def step(self, now_us: int) -> None:
        """Play every packet whose playout tick has passed."""
        self._decay_target(now_us)
        if self._next_play_seq is None:
            return
        while True:
            seq = self._next_play_seq
            capture = self._captures.get(seq)
            if capture is None:
                # We have never seen this seq; estimate its capture time
                # from the previous one.
                capture = self._estimated_capture(seq)
                if capture is None:
                    return
            playout_us = capture + int(self.target_delay_ms * 1000)
            if now_us < playout_us:
                return
            arrival = self._arrivals.pop(seq, None)
            self._captures.pop(seq, None)
            self.total_samples += self.samples_per_packet
            if arrival is None or arrival > playout_us:
                self.concealed_samples += self.samples_per_packet
                if arrival is not None:
                    # Arrived too late: grow the target delay.
                    needed_ms = (arrival - capture) / 1000.0
                    self.target_delay_ms = min(
                        self.max_delay_ms,
                        max(self.target_delay_ms, needed_ms),
                    )
                self._last_buffer_delay_ms = 0.0
            else:
                self.played_packets += 1
                self._last_buffer_delay_ms = max(
                    0.0, (playout_us - arrival) / 1000.0
                )
            self._next_play_seq = seq + 1

    def _estimated_capture(self, seq: int) -> Optional[int]:
        if not self._captures:
            return None
        known_seq = min(self._captures.keys())
        known_capture = self._captures[known_seq]
        return known_capture - (known_seq - seq) * self.packet_interval_us

    def _decay_target(self, now_us: int) -> None:
        dt_s = max(0, now_us - self._last_decay_us) / 1e6
        self._last_decay_us = now_us
        floor = self.base_delay_ms + self.jitter_multiplier * self._jitter_ms
        if self.target_delay_ms > floor:
            self.target_delay_ms = max(
                floor, self.target_delay_ms - self.decay_ms_per_s * dt_s
            )

    def current_delay_ms(self) -> float:
        return self._last_buffer_delay_ms

    def minimum_delay_ms(self) -> float:
        return self.base_delay_ms + self.jitter_multiplier * self._jitter_ms

    @property
    def concealment_fraction(self) -> float:
        if self.total_samples == 0:
            return 0.0
        return self.concealed_samples / self.total_samples
