"""Table 4 (Appendix C): each causal chain's detection ratio given that
its consequence occurred, commercial vs private.

Reproduction targets: full-chain ratios are bounded by the Table 2
co-occurrence probabilities; RLC chains appear only on private cells;
UL-scheduling and HARQ chains are present in both deployments.
"""

from conftest import save_result

from repro.core.chains import CauseKind, ConsequenceKind
from repro.core.detector import DominoDetector
from repro.core.report import render_chain_ratio_table
from repro.core.stats import DominoStats


def test_table4_chain_ratios(benchmark, commercial_results, private_results):
    detector = DominoDetector()

    def build():
        commercial = DominoStats.from_reports(
            detector.analyze(r.bundle) for r in commercial_results
        )
        private = DominoStats.from_reports(
            detector.analyze(r.bundle) for r in private_results
        )
        return commercial, private

    commercial, private = benchmark.pedantic(build, rounds=1, iterations=1)
    text = render_chain_ratio_table(commercial, private)
    save_result("table4_chain_ratios", text)

    commercial_ratios = commercial.chain_ratios()
    commercial_conditional = commercial.conditional_probabilities()
    private_ratios = private.chain_ratios()

    for consequence in ConsequenceKind:
        for cause in CauseKind:
            # A full chain requires cause + intermediates + consequence,
            # so its ratio cannot exceed bare co-occurrence.
            assert (
                commercial_ratios[consequence][cause]
                <= commercial_conditional[consequence][cause] + 1e-9
            )
        # RLC chains cannot be detected without RLC telemetry.
        assert commercial_ratios[consequence][CauseKind.RLC_RETX] == 0.0

    # Both deployments produce at least one UL-scheduling and one HARQ
    # chain somewhere (the paper's "prevalent across both" finding).
    assert any(
        commercial_ratios[c][CauseKind.UL_SCHEDULING] > 0
        for c in ConsequenceKind
    )
    assert any(
        private_ratios[c][CauseKind.UL_SCHEDULING] > 0
        for c in ConsequenceKind
    )
    assert any(
        commercial_ratios[c][CauseKind.HARQ_RETX] > 0 for c in ConsequenceKind
    )
