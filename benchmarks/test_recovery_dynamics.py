"""§6.2 recovery dynamics: slow additive increase vs fast ack-bitrate
recovery.

Paper: after an overuse event GCC usually recovers via cautious additive
increase — taking 30+ seconds to restore the pre-congestion rate — while
the acknowledged-bitrate fast path (rate restored within ~2 s) occurs in
only ~1% of anomalies.  This benchmark drives the AIMD controller
directly through both regimes and measures recovery times.
"""

from conftest import save_result

from repro.analysis.ascii import render_table
from repro.rtc.gcc.aimd import AimdRateControl
from repro.rtc.gcc.overuse import BandwidthUsage


def _recovery_time_s(acked_follows_target: bool) -> float:
    """Seconds to restore 95% of the pre-overuse rate after a congestion
    episode with three back-to-back overuse cuts (as delay spikes in the
    paper's traces usually trigger repeated decreases, Fig. 21).

    acked_follows_target=True models the normal regime: the application
    sends at the (reduced) target, so the acknowledged bitrate equals it
    and the capacity estimate keeps the controller additive.
    acked_follows_target=False models the fast-recovery regime: the
    network delivers the full pre-congestion throughput immediately
    (short-lived overuse), letting the ack-bitrate estimator lift the
    cap and the capacity estimate reset.
    """
    pre_rate = 3_000_000.0
    aimd = AimdRateControl(initial_bps=pre_rate)
    now = 0
    aimd.update(BandwidthUsage.NORMAL, pre_rate, now)
    for _ in range(3):
        now += 500_000
        aimd.update(BandwidthUsage.OVERUSE, aimd.target_bps, now)
    elapsed = 0.0
    while aimd.target_bps < 0.95 * pre_rate and elapsed < 120.0:
        now += 100_000
        elapsed += 0.1
        acked = aimd.target_bps if acked_follows_target else pre_rate * 1.3
        aimd.update(BandwidthUsage.NORMAL, acked, now)
    return elapsed


def test_recovery_dynamics(benchmark):
    def build():
        return {
            "additive (normal)": _recovery_time_s(True),
            "fast (ack-bitrate)": _recovery_time_s(False),
        }

    times = benchmark.pedantic(build, rounds=1, iterations=1)
    rows = [[label, seconds] for label, seconds in times.items()]
    save_result(
        "recovery_dynamics",
        render_table(["recovery path", "time to 95% (s)"], rows)
        + "\n(paper: additive recovery >30 s; fast recovery ~2 s, seen in ~1% of anomalies)",
    )

    assert times["additive (normal)"] > 15.0  # slow path is slow
    assert times["fast (ack-bitrate)"] < 8.0  # fast path is fast
    assert times["additive (normal)"] > 2.5 * times["fast (ack-bitrate)"]
