"""Fig. 22: reverse-path (RTCP) delay alone triggers the pushback
controller.

Paper annotations: ① forward media delay stays stable, ② RTCP delay
rises past 300 ms, ③ outstanding bytes exceed the congestion window,
④ the pushback rate drops while the target bitrate stays high, ⑤ the
outbound frame rate drops.
"""

import numpy as np
from conftest import save_result

from repro.analysis.ascii import render_series
from repro.datasets.workloads import pushback_session
from repro.telemetry.timeline import Timeline

FADE_START_S = 4.0
FADE_END_S = 5.5


def test_fig22_pushback(benchmark):
    def build():
        session = pushback_session(seed=2)
        result = session.run(11_000_000)
        return Timeline.from_bundle(result.bundle)

    timeline = benchmark.pedantic(build, rounds=1, iterations=1)
    t = timeline.t_us / 1e6
    series = {
        "media_delay_ms": timeline["ul_packet_delay_ms"],
        "rtcp_delay_ms": timeline["dl_rtcp_delay_ms"],
        "outstanding_kB": timeline["local_outstanding_bytes"] / 1e3,
        "cwnd_kB": timeline["local_congestion_window_bytes"] / 1e3,
        "target_Mbps": timeline["local_target_bitrate_bps"] / 1e6,
        "pushback_Mbps": timeline["local_pushback_bitrate_bps"] / 1e6,
        "out_fps": timeline["local_outbound_fps"],
    }
    text = render_series(
        t,
        series,
        n_points=26,
        annotations={
            FADE_START_S - 0.5: "(1) media delay stable",
            FADE_START_S + 0.4: "(2) RTCP delay rises",
            FADE_START_S + 0.8: "(3) outstanding > cwnd",
            FADE_START_S + 1.2: "(4) pushback rate drops",
            FADE_START_S + 1.8: "(5) frame rate drops",
        },
    )
    save_result("fig22_pushback", text)

    before = (t > 1.5) & (t < FADE_START_S)
    during = (t >= FADE_START_S + 0.2) & (t < FADE_END_S + 1.0)

    media_delay = np.nan_to_num(timeline["ul_packet_delay_ms"])
    # (1) the forward path stays comparatively stable.
    assert media_delay[during].max() < 150.0
    rtcp_delay = np.nan_to_num(timeline["dl_rtcp_delay_ms"])
    assert rtcp_delay[during].max() > 3 * max(rtcp_delay[before].mean(), 1.0)  # (2)
    outstanding = np.nan_to_num(timeline["local_outstanding_bytes"])
    cwnd = np.nan_to_num(timeline["local_congestion_window_bytes"])
    assert (outstanding[during] > cwnd[during]).any()  # (3)
    target = timeline["local_target_bitrate_bps"]
    pushback = timeline["local_pushback_bitrate_bps"]
    gap = (target[during] - pushback[during]) / np.maximum(target[during], 1.0)
    assert np.nanmax(gap) > 0.05  # (4) pushback diverges below target
