"""The command-line interface."""

import pytest

from repro.cli import main
from repro.telemetry.io import load_bundle, save_bundle


@pytest.fixture()
def trace_path(tmp_path, private_bundle):
    path = str(tmp_path / "trace.jsonl")
    save_bundle(private_bundle, path)
    return path


def test_simulate_writes_trace(tmp_path, capsys):
    out = str(tmp_path / "sim.jsonl")
    code = main(
        [
            "simulate",
            "--profile",
            "wired",
            "--duration",
            "5",
            "--seed",
            "3",
            "--out",
            out,
        ]
    )
    assert code == 0
    captured = capsys.readouterr().out
    assert "wrote" in captured
    bundle = load_bundle(out)
    assert bundle.duration_us == 5_000_000
    assert len(bundle.packets) > 100


def test_simulate_cellular_profile(tmp_path):
    out = str(tmp_path / "cell.jsonl")
    code = main(
        [
            "simulate",
            "--profile",
            "mosolabs",
            "--duration",
            "4",
            "--out",
            out,
        ]
    )
    assert code == 0
    bundle = load_bundle(out)
    assert len(bundle.dci) > 0


def test_analyze_prints_chains(trace_path, capsys):
    code = main(["analyze", trace_path])
    assert code == 0
    captured = capsys.readouterr().out
    assert "windows analysed" in captured
    assert "degradation events/min" in captured


def test_analyze_with_custom_chains(trace_path, tmp_path, capsys):
    chains = tmp_path / "chains.txt"
    chains.write_text(
        "ul_channel_degrades --> ul_delay_up --> remote_jitter_buffer_drain\n"
    )
    code = main(["analyze", trace_path, "--chains", str(chains)])
    assert code == 0


def test_report_prints_summary(trace_path, capsys):
    code = main(["report", trace_path])
    assert code == 0
    captured = capsys.readouterr().out
    assert "one-way delay" in captured
    assert "jitter buffer" in captured


def test_codegen_prints_python(tmp_path, capsys):
    chains = tmp_path / "chains.txt"
    chains.write_text(
        "dl_rlc_retx --> forward_delay_up --> local_jitter_buffer_drain\n"
    )
    code = main(["codegen", str(chains)])
    assert code == 0
    captured = capsys.readouterr().out
    assert "def backward_trace(features):" in captured


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def _run_fleet(tmp_path, capsys, workers, out_name, extra_args=()):
    out = str(tmp_path / out_name)
    code = main(
        [
            "fleet",
            "--preset",
            "smoke",
            "--workers",
            str(workers),
            "--out",
            out,
            # Keep campaign runs hermetic (no .fleet-cache in the CWD)
            # and genuinely simulated unless a test opts in to caching.
            "--no-cache",
            *extra_args,
        ]
    )
    assert code == 0
    captured = capsys.readouterr().out
    # Everything after the bookkeeping lines is the aggregate report.
    report = captured.split("\n\n", 1)[1]
    with open(out, "rb") as handle:
        return report, handle.read()


def test_fleet_parallel_output_byte_identical(tmp_path, capsys):
    """--workers 4 must aggregate byte-identically to --workers 1."""
    serial_report, serial_jsonl = _run_fleet(tmp_path, capsys, 1, "w1.jsonl")
    parallel_report, parallel_jsonl = _run_fleet(
        tmp_path, capsys, 4, "w4.jsonl"
    )
    assert serial_jsonl == parallel_jsonl
    assert serial_report == parallel_report
    assert "Top root causes fleet-wide" in serial_report


def test_fleet_report_rerenders_saved_outcomes(tmp_path, capsys):
    report, _ = _run_fleet(tmp_path, capsys, 1, "w1.jsonl")
    code = main(["fleet-report", str(tmp_path / "w1.jsonl")])
    assert code == 0
    assert capsys.readouterr().out.strip() == report.strip()


def test_live_replay_service_and_watch(tmp_path, capsys):
    """`repro live` runs a replay fleet to completion and writes a
    snapshot `repro watch` can render."""
    snap = str(tmp_path / "snap.json")
    code = main(
        [
            "live",
            "--sessions",
            "2",
            "--duration",
            "8",
            "--quiet",
            "--snapshot",
            snap,
        ]
    )
    assert code == 0
    captured = capsys.readouterr().out
    assert "live fleet" in captured
    assert "rtf" in captured  # per-session realtime factor column
    code = main(["watch", snap])
    assert code == 0
    watched = capsys.readouterr().out
    assert "2 sessions" in watched
    assert "2 done" in watched


def test_live_sim_source(capsys):
    code = main(
        [
            "live",
            "--sessions",
            "1",
            "--duration",
            "6",
            "--source",
            "sim",
            "--quiet",
        ]
    )
    assert code == 0
    captured = capsys.readouterr().out
    assert "1 done" in captured


def test_fleet_cache_dir_rerun_skips_simulation(tmp_path, capsys):
    import time

    cache_dir = str(tmp_path / "cache")

    def run(out_name):
        out = str(tmp_path / out_name)
        start = time.perf_counter()
        code = main(
            [
                "fleet",
                "--preset",
                "smoke",
                "--out",
                out,
                "--cache-dir",
                cache_dir,
            ]
        )
        elapsed = time.perf_counter() - start
        assert code == 0
        capsys.readouterr()
        with open(out, "rb") as handle:
            return handle.read(), elapsed

    cold_bytes, cold_elapsed = run("cold.jsonl")
    warm_bytes, warm_elapsed = run("warm.jsonl")
    assert warm_bytes == cold_bytes
    assert warm_elapsed < cold_elapsed / 5  # cache hits, no simulation


def test_sigterm_graceful_drain_flushes_metrics_file(tmp_path):
    """SIGTERM must unwind main()'s finally and flush --metrics-file.

    Runs the CLI as a real subprocess (signal dispositions are
    per-process state): a follow-mode watch blocked waiting on a
    snapshot that never appears is terminated mid-wait, and must still
    exit 143 (128 + SIGTERM) with its final metrics snapshot on disk.
    """
    import os
    import signal
    import subprocess
    import sys
    import time

    import repro
    from repro.obs import parse_prom

    src_dir = os.path.dirname(os.path.dirname(repro.__file__))
    env = dict(os.environ)
    env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
    metrics_path = str(tmp_path / "final.prom")
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "--metrics-file",
            metrics_path,
            "watch",
            str(tmp_path / "never-written-snap.json"),
            "--follow",
            "--interval",
            "0.2",
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    try:
        time.sleep(1.5)  # let it start its poll loop
        proc.send_signal(signal.SIGTERM)
        code = proc.wait(timeout=30)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)
    assert code == 143
    with open(metrics_path) as handle:
        parse_prom(handle.read())  # flushed snapshot is parseable


def test_causal_score_renders_saved_labeled_campaign(tmp_path, capsys):
    from repro.causal.confounders import GroundTruthLabel
    from repro.fleet.executor import SessionOutcome, save_outcomes

    outcomes = [
        SessionOutcome(
            scenario=f"adv/s{i}",
            profile="amarisoft",
            impairment="ul_fade",
            seed=i,
            duration_s=8.0,
            n_windows=10,
            n_detected_windows=3,
            degradation_events_per_min=1.0,
            ground_truth=GroundTruthLabel(
                cause="Poor Channel",
                impairment="ul_fade",
                axes=("reactive_control",),
                spurious=("Cross Traffic",),
                accepted=("Poor Channel", "HARQ ReTX"),
            ),
            attributions={
                "domino": "Poor Channel",
                "correlation": "Cross Traffic" if i else "Poor Channel",
            },
        )
        for i in range(2)
    ]
    path = str(tmp_path / "labeled.jsonl")
    save_outcomes(outcomes, path)
    assert main(["causal", "score", path]) == 0
    out = capsys.readouterr().out
    assert "| 1 | domino | 1.000 |" in out
    assert "reactive_control" in out


def test_causal_score_rejects_unlabeled_campaign(tmp_path, capsys):
    from repro.fleet.executor import SessionOutcome, save_outcomes

    outcome = SessionOutcome(
        scenario="plain/s0",
        profile="amarisoft",
        impairment="none",
        seed=0,
        duration_s=8.0,
        n_windows=10,
        n_detected_windows=0,
        degradation_events_per_min=0.0,
    )
    path = str(tmp_path / "plain.jsonl")
    save_outcomes([outcome], path)
    assert main(["causal", "score", path]) == 1
    assert "no outcome carries ground-truth labels" in capsys.readouterr().out
