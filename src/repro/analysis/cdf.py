"""Empirical CDFs — the paper's favourite plot type."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class Cdf:
    """An empirical cumulative distribution function."""

    values: np.ndarray  # sorted sample values
    probabilities: np.ndarray  # P(X <= value)

    def percentile(self, q: float) -> float:
        """Value at quantile *q* (0..100)."""
        if len(self.values) == 0:
            return float("nan")
        return float(np.percentile(self.values, q))

    @property
    def median(self) -> float:
        return self.percentile(50.0)

    def probability_at(self, x: float) -> float:
        """P(X <= x)."""
        if len(self.values) == 0:
            return float("nan")
        return float(np.searchsorted(self.values, x, side="right")) / len(
            self.values
        )

    def sample_points(self, n: int = 50) -> Tuple[np.ndarray, np.ndarray]:
        """Evenly spaced (value, probability) points for plotting."""
        if len(self.values) == 0:
            return np.empty(0), np.empty(0)
        indices = np.linspace(0, len(self.values) - 1, min(n, len(self.values)))
        indices = indices.astype(int)
        return self.values[indices], self.probabilities[indices]

    def __len__(self) -> int:
        return len(self.values)


def compute_cdf(samples: Iterable[float]) -> Cdf:
    """Build an empirical CDF from raw samples (NaNs dropped)."""
    array = np.asarray(list(samples), dtype=float)
    array = array[~np.isnan(array)]
    array.sort()
    n = len(array)
    probabilities = (
        np.arange(1, n + 1, dtype=float) / n if n else np.empty(0)
    )
    return Cdf(values=array, probabilities=probabilities)


def cdf_row(
    label: str, cdf: Cdf, quantiles: Sequence[float] = (25, 50, 75, 90, 99)
) -> str:
    """One summary row: label plus selected percentiles."""
    cells = " ".join(f"p{int(q)}={cdf.percentile(q):8.2f}" for q in quantiles)
    return f"{label:<28} n={len(cdf):<7} {cells}"
