"""Cause-attribution extraction and ground-truth scoring.

:func:`attribute_detectors` runs every detector/baseline over one
session's telemetry and reduces each to a single root-cause attribution
(a ``CauseKind`` value string, ``"Congestion"`` for the app-only
baseline's coarse bucket, or ``"none"``).  It executes inside the fleet
worker (:func:`repro.fleet.executor.run_scenario`), so attributions ride
home in the picklable :class:`~repro.fleet.executor.SessionOutcome` on
process-pool and cluster backends alike.

:func:`score_outcomes` folds labelled outcomes into a
:class:`CausalReport` — per-detector precision/recall/F1 against the
simulator's ground truth plus a per-confounder-axis confusion breakdown
— and :func:`render_leaderboard` renders the Markdown table ``repro
causal bench`` prints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.chains import classify_cause

#: Detector/baseline column order of the leaderboard.
DETECTORS: Tuple[str, ...] = (
    "domino",
    "pcmci",
    "granger",
    "correlation",
    "single_layer",
    "app_only",
)


def _argmax_label(counts: Dict[str, int]) -> str:
    """Deterministic argmax: highest count, label as tie-break."""
    best: Optional[Tuple[int, str]] = None
    for label, count in counts.items():
        if count <= 0:
            continue
        key = (-count, label)
        if best is None or key < (-best[0], best[1]):
            best = (count, label)
    return best[1] if best else "none"


def _domino_attribution(stats) -> str:
    """Cause family of Domino's dominant *detected chain*.

    Uses complete chains rather than bare cause-event counts: a
    confounder burst can fire a cross-traffic event without completing
    any chain to the app-layer consequence, and chain completion is
    exactly the causal structure Domino adds.
    """
    counts: Dict[str, int] = {}
    for chain, count in stats.chain_episode_counts().items():
        kind = classify_cause(chain[0])
        if kind is None:
            continue
        counts[kind.value] = counts.get(kind.value, 0) + count
    return _argmax_label(counts)


def _ranked_attribution(results, score_of) -> str:
    """Strongest top-ranked cause across a baseline's consequence results."""
    from repro.baselines.causal import cause_label_for_series

    best_label, best_score = "none", 0.0
    for result in results:
        if not result.ranking:
            continue
        name, score = result.ranking[0]
        label = cause_label_for_series(name)
        if label is None:
            continue
        if abs(score_of(score)) > best_score:
            best_label, best_score = label, abs(score_of(score))
    return best_label


def attribute_detectors(
    bundle, stats, include: Sequence[str] = DETECTORS
) -> Dict[str, str]:
    """Run each detector over *bundle* and extract its attribution."""
    from repro.baselines import (
        AppOnlyDetector,
        CorrelationRca,
        GrangerRca,
        PcmciRca,
        SingleLayerAlerts,
    )

    out: Dict[str, str] = {}
    for name in include:
        if name == "domino":
            out[name] = _domino_attribution(stats)
        elif name == "correlation":
            out[name] = _ranked_attribution(
                CorrelationRca().analyze(bundle), float
            )
        elif name == "granger":
            out[name] = _ranked_attribution(
                GrangerRca().analyze(bundle), float
            )
        elif name == "pcmci":
            out[name] = _ranked_attribution(
                PcmciRca().analyze(bundle), float
            )
        elif name == "app_only":
            report = AppOnlyDetector().analyze(bundle)
            out[name] = (
                "Congestion" if report.attributed_windows else "none"
            )
        elif name == "single_layer":
            report = SingleLayerAlerts().analyze(bundle)
            counts: Dict[str, int] = {}
            for feature, count in report.alert_counts.items():
                kind = classify_cause(feature)
                if kind is not None and count:
                    counts[kind.value] = counts.get(kind.value, 0) + count
            out[name] = _argmax_label(counts)
        else:
            raise ValueError(f"unknown detector {name!r}")
    return out


@dataclass(frozen=True)
class CausalReport:
    """Scored causal-validation campaign (a stamped schema artifact).

    Attributes:
        campaign: campaign/preset label.
        n_scenarios: outcomes considered.
        n_labeled: outcomes carrying ground truth + attributions.
        detectors: leaderboard rows, in rank order (best F1 first).
        scores: detector → {"precision", "recall", "f1", "accuracy"}
            (macro-averaged over the true cause classes).
        per_axis: confounder axis → detector → {"correct", "spurious",
            "other", "total"} attribution tallies.
    """

    campaign: str
    n_scenarios: int
    n_labeled: int
    detectors: Tuple[str, ...] = ()
    scores: Dict[str, Dict[str, float]] = field(default_factory=dict)
    per_axis: Dict[str, Dict[str, Dict[str, int]]] = field(
        default_factory=dict
    )

    def f1(self, detector: str) -> float:
        return self.scores.get(detector, {}).get("f1", 0.0)

    def to_json(self) -> dict:
        from repro.schema import causal_report_to_wire

        return causal_report_to_wire(self)

    @classmethod
    def from_json(cls, data: dict) -> "CausalReport":
        from repro.schema import causal_report_from_wire

        return causal_report_from_wire(data)


def _macro_scores(
    pairs: List[Tuple[str, str]]
) -> Dict[str, float]:
    """Macro precision/recall/F1 over truth classes, plus accuracy."""
    classes = sorted({truth for truth, _ in pairs})
    precisions: List[float] = []
    recalls: List[float] = []
    f1s: List[float] = []
    for cls in classes:
        tp = sum(1 for t, p in pairs if t == cls and p == cls)
        fp = sum(1 for t, p in pairs if t != cls and p == cls)
        fn = sum(1 for t, p in pairs if t == cls and p != cls)
        precision = tp / (tp + fp) if tp + fp else 0.0
        recall = tp / (tp + fn) if tp + fn else 0.0
        f1 = (
            2 * precision * recall / (precision + recall)
            if precision + recall
            else 0.0
        )
        precisions.append(precision)
        recalls.append(recall)
        f1s.append(f1)
    n = len(classes) or 1
    correct = sum(1 for t, p in pairs if t == p)
    return {
        "precision": sum(precisions) / n,
        "recall": sum(recalls) / n,
        "f1": sum(f1s) / n,
        "accuracy": correct / len(pairs) if pairs else 0.0,
    }


def _axis_of(label) -> str:
    return "+".join(label.axes) if label.axes else "unlabelled"


def score_outcomes(outcomes: Iterable, campaign: str = "") -> CausalReport:
    """Score every labelled outcome's attributions against ground truth."""
    outcomes = list(outcomes)
    labeled = [
        o
        for o in outcomes
        if o.ground_truth is not None and o.attributions
    ]
    detectors = [
        d
        for d in DETECTORS
        if any(d in o.attributions for o in labeled)
    ]
    scores: Dict[str, Dict[str, float]] = {}
    per_axis: Dict[str, Dict[str, Dict[str, int]]] = {}
    for detector in detectors:
        pairs: List[Tuple[str, str]] = []
        for outcome in labeled:
            label = outcome.ground_truth
            prediction = outcome.attributions.get(detector, "none")
            # Mechanism-aware credit: naming any family on the true
            # causal pathway (label.accepted) counts as the true cause;
            # only off-pathway attributions — the injected confounder
            # above all — stay wrong.
            if prediction == label.cause or prediction in label.accepted:
                prediction = label.cause
            pairs.append((label.cause, prediction))
            axis = _axis_of(label)
            tally = per_axis.setdefault(axis, {}).setdefault(
                detector,
                {"correct": 0, "spurious": 0, "other": 0, "total": 0},
            )
            tally["total"] += 1
            if prediction == label.cause:
                tally["correct"] += 1
            elif prediction in label.spurious:
                tally["spurious"] += 1
            else:
                tally["other"] += 1
        scores[detector] = _macro_scores(pairs)
    ranked = tuple(
        sorted(detectors, key=lambda d: (-scores[d]["f1"], d))
    )
    return CausalReport(
        campaign=campaign,
        n_scenarios=len(outcomes),
        n_labeled=len(labeled),
        detectors=ranked,
        scores=scores,
        per_axis=per_axis,
    )


def render_leaderboard(report: CausalReport) -> str:
    """Markdown leaderboard + per-axis confusion breakdown."""
    lines: List[str] = []
    title = report.campaign or "causal bench"
    lines.append(f"# Causal validation — {title}")
    lines.append("")
    lines.append(
        f"{report.n_labeled} labelled scenario(s) of "
        f"{report.n_scenarios} scored."
    )
    lines.append("")
    lines.append("| rank | detector | F1 | precision | recall | accuracy |")
    lines.append("|---:|---|---:|---:|---:|---:|")
    for rank, detector in enumerate(report.detectors, start=1):
        s = report.scores[detector]
        lines.append(
            f"| {rank} | {detector} | {s['f1']:.3f} | "
            f"{s['precision']:.3f} | {s['recall']:.3f} | "
            f"{s['accuracy']:.3f} |"
        )
    if report.per_axis:
        lines.append("")
        lines.append("## Per confounder axis (correct / spurious / other)")
        lines.append("")
        header = "| axis | " + " | ".join(report.detectors) + " |"
        lines.append(header)
        lines.append("|---|" + "---|" * len(report.detectors))
        for axis in sorted(report.per_axis):
            cells = []
            for detector in report.detectors:
                tally = report.per_axis[axis].get(detector)
                if tally is None:
                    cells.append("–")
                    continue
                cells.append(
                    f"{tally['correct']}/{tally['spurious']}"
                    f"/{tally['other']}"
                )
            lines.append(f"| {axis} | " + " | ".join(cells) + " |")
    lines.append("")
    return "\n".join(lines)
