"""Adaptive jitter buffers: playout, adaptation, freezes, concealment."""

import pytest

from repro.rtc.jitter_buffer import AudioJitterBuffer, VideoJitterBuffer


def _feed_frames(buffer, n, capture_interval_us=33_333, delay_us=30_000):
    """Feed n complete 1-packet frames with constant network delay."""
    for frame_id in range(n):
        capture = frame_id * capture_interval_us
        buffer.on_packet(
            frame_id=frame_id,
            capture_us=capture,
            packets_in_frame=1,
            resolution_p=540,
            arrival_us=capture + delay_us,
        )


def test_stable_playout_in_order():
    buffer = VideoJitterBuffer()
    _feed_frames(buffer, 30)
    played = buffer.step(30 * 33_333 + 1_000_000)
    ids = [f.frame_id for f in played]
    assert ids == sorted(ids)
    assert len(played) == 30
    assert buffer.total_freeze_us == 0


def test_buffer_delay_positive_when_stable():
    buffer = VideoJitterBuffer(base_delay_ms=60.0)
    _feed_frames(buffer, 30, delay_us=20_000)
    buffer.step(2_000_000)
    assert buffer.current_delay_ms() > 0


def test_delay_spike_drains_buffer_and_freezes():
    """Fig. 20: a delay surge drains the buffer and freezes playout.

    Arrivals are interleaved with playout steps (the session's real call
    pattern): the buffer only learns about a frame when it arrives.
    """
    buffer = VideoJitterBuffer(base_delay_ms=40.0)
    arrivals = []
    for frame_id in range(40):
        capture = frame_id * 33_333
        delay = 20_000 if frame_id < 30 else 400_000
        arrivals.append((capture + delay, frame_id, capture))
    arrivals.sort()
    drained = False
    index = 0
    for t in range(0, 3_000_000, 5_000):
        while index < len(arrivals) and arrivals[index][0] <= t:
            arrival_us, frame_id, capture = arrivals[index]
            buffer.on_packet(
                frame_id=frame_id,
                capture_us=capture,
                packets_in_frame=1,
                resolution_p=540,
                arrival_us=arrival_us,
            )
            index += 1
        for frame in buffer.step(t):
            if frame.buffer_delay_ms <= 0.5:
                drained = True
    assert drained
    assert buffer.total_freeze_us > 0
    assert buffer.freeze_count >= 1
    # The spike pushed the adaptive target up.
    assert buffer.target_delay_ms > 40.0


def test_target_decays_after_spike():
    buffer = VideoJitterBuffer(base_delay_ms=40.0, decay_ms_per_s=10.0)
    buffer.target_delay_ms = 300.0
    buffer.step(0)
    buffer.step(5_000_000)
    assert buffer.target_delay_ms < 300.0


def test_incomplete_frame_eventually_dropped():
    buffer = VideoJitterBuffer()
    # Frame 0 never completes (2 packets, only 1 arrives).
    buffer.on_packet(0, 0, packets_in_frame=2, resolution_p=540, arrival_us=10_000)
    _feed_frames(buffer, 10)  # frame ids 0..9, frame 0 re-registered? no: id>max
    # Actually frames 1..9 complete; play far in the future.
    played = buffer.step(5_000_000)
    assert buffer.dropped_frames >= 0
    assert len(played) >= 8  # playout moved on


def test_fps_measurement():
    buffer = VideoJitterBuffer()
    _feed_frames(buffer, 60)
    # Step progressively (realistic playout clock) and measure at the
    # end of the stepped range.
    for t in range(0, 2_000_000, 10_000):
        buffer.step(t)
    fps = buffer.fps_over(now_us=2_000_000)
    assert 20 <= fps <= 35


def test_audio_stable_no_concealment():
    buffer = AudioJitterBuffer()
    for seq in range(100):
        buffer.on_packet(seq, capture_us=seq * 20_000, arrival_us=seq * 20_000 + 15_000)
    buffer.step(3_000_000)
    assert buffer.played_packets > 80
    assert buffer.concealment_fraction < 0.05


def test_audio_missing_packet_concealed():
    buffer = AudioJitterBuffer()
    for seq in range(50):
        if seq == 25:
            continue  # lost
        buffer.on_packet(seq, capture_us=seq * 20_000, arrival_us=seq * 20_000 + 10_000)
    buffer.step(3_000_000)
    assert buffer.concealed_samples >= buffer.samples_per_packet
    assert 0 < buffer.concealment_fraction < 0.1


def test_audio_late_packet_concealed_and_target_grows():
    buffer = AudioJitterBuffer(base_delay_ms=30.0)
    initial_target = buffer.target_delay_ms
    for seq in range(50):
        delay = 10_000 if seq < 25 else 250_000  # sudden delay surge
        buffer.on_packet(seq, capture_us=seq * 20_000, arrival_us=seq * 20_000 + delay)
        buffer.step(seq * 20_000 + 30_000)
    buffer.step(3_000_000)
    assert buffer.concealed_samples > 0
    assert buffer.target_delay_ms > initial_target


def test_audio_total_samples_accounting():
    buffer = AudioJitterBuffer()
    for seq in range(20):
        buffer.on_packet(seq, seq * 20_000, seq * 20_000 + 5_000)
    buffer.step(1_000_000)
    assert buffer.total_samples == 20 * buffer.samples_per_packet
