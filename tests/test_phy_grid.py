"""Resource grid: slot timing, TDD patterns, PRB counts."""

import pytest

from repro.errors import ConfigError
from repro.phy.grid import ResourceGrid, SlotType, prb_count, slot_duration_us


def test_slot_durations():
    assert slot_duration_us(15) == 1000
    assert slot_duration_us(30) == 500
    with pytest.raises(ConfigError):
        slot_duration_us(17)


def test_prb_counts_from_table():
    assert prb_count(15, 15) == 79  # the T-Mobile FDD cell
    assert prb_count(30, 100) == 273  # the T-Mobile TDD cell
    assert prb_count(30, 20) == 51  # the private cells


def test_prb_count_fallback_approximation():
    # 30 kHz / 50 MHz is not in the table; ~0.9 * 50e6 / 360e3 = 125.
    assert 110 <= prb_count(30, 50) <= 140


def test_fdd_grid_all_slots_both():
    grid = ResourceGrid(scs_khz=15, bandwidth_mhz=15, tdd_pattern=None)
    assert grid.is_fdd
    for slot in range(10):
        assert grid.slot_type(slot) is SlotType.BOTH
        assert grid.slot_type(slot).carries_uplink
        assert grid.slot_type(slot).carries_downlink
    assert grid.uplink_slot_fraction() == 1.0


def test_tdd_pattern_cycles():
    grid = ResourceGrid(scs_khz=30, bandwidth_mhz=20, tdd_pattern="DDDSU")
    expected = [
        SlotType.DOWNLINK,
        SlotType.DOWNLINK,
        SlotType.DOWNLINK,
        SlotType.SPECIAL,
        SlotType.UPLINK,
    ]
    for slot in range(15):
        assert grid.slot_type(slot) is expected[slot % 5]
    assert grid.uplink_slot_fraction() == pytest.approx(0.2)
    assert grid.downlink_slot_fraction() == pytest.approx(0.6)


def test_next_slot_of_type():
    grid = ResourceGrid(scs_khz=30, bandwidth_mhz=20, tdd_pattern="DDDSU")
    # Slot 4 is the first uplink slot of each cycle.
    assert grid.next_slot_of_type(0, uplink=True) == 4
    assert grid.next_slot_of_type(4, uplink=True) == 4
    assert grid.next_slot_of_type(5, uplink=True) == 9
    assert grid.next_slot_of_type(4, uplink=False) == 5


def test_next_slot_raises_when_direction_missing():
    grid = ResourceGrid(scs_khz=30, bandwidth_mhz=20, tdd_pattern="DDD")
    with pytest.raises(ConfigError):
        grid.next_slot_of_type(0, uplink=True)


def test_slot_time_mapping():
    grid = ResourceGrid(scs_khz=30, bandwidth_mhz=20)
    assert grid.slot_start_us(7) == 3500
    assert grid.slot_index_at(3500) == 7
    assert grid.slot_index_at(3999) == 7
    assert grid.slots_per_second() == 2000


def test_invalid_pattern_rejected():
    with pytest.raises(ConfigError):
        ResourceGrid(scs_khz=30, bandwidth_mhz=20, tdd_pattern="DXU")
    with pytest.raises(ConfigError):
        ResourceGrid(scs_khz=30, bandwidth_mhz=20, tdd_pattern="")
