"""The 20 event-detection conditions of Table 5 (Appendix D).

Each detector evaluates one condition over a sliding window of resampled
series (50 ms bins; W = 5 s → 100 bins).  The implementations follow the
appendix formulas; thresholds live in :class:`EventConfig` so ablation
benchmarks can sweep them.

Where the paper compares raw samples directly (rows 5, 7, 9, 10), a small
relative margin is applied by default: the paper's inputs were discrete
WebRTC stat counters, while the simulator produces continuous floats
whose bit-level noise would otherwise satisfy strict inequalities
vacuously.  Setting the margins to 0 recovers the paper-exact conditions.

Two registries are exposed:

* :func:`build_registry` — the per-window reference implementations,
  callable(window, config) → bool over one window's 1-D series.  These
  are the semantic ground truth and the extension surface for custom
  detectors.
* :func:`build_batch_registry` — vectorized counterparts,
  callable(windows, config) → bool array over *all* window positions at
  once, where every series is a ``(n_windows, window_bins)`` matrix
  (a strided :func:`numpy.lib.stride_tricks.sliding_window_view`).  Each
  batch detector is written to be *exactly* equivalent to its reference
  — same NaN semantics, same float comparisons — which
  ``tests/test_batch_features.py`` asserts property-style.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Mapping

import numpy as np

WindowView = Mapping[str, np.ndarray]

#: Batch view: same names, but each series is (n_windows, window_bins).
BatchWindowView = Mapping[str, np.ndarray]


@dataclass(frozen=True)
class EventConfig:
    """Thresholds for the Table 5 event conditions."""

    # Rows 1-2: frame-rate drop.
    framerate_high_fps: float = 27.0
    framerate_low_fps: float = 25.0
    # Row 4: jitter buffer drained (== 0 ms, with float epsilon).
    jitter_buffer_zero_ms: float = 0.5
    # Rows 5/7: rate downtrends; relative drop needed between samples.
    rate_drop_margin: float = 0.05
    # Row 9: outstanding-bytes uptrend margin between 500 ms means.
    outstanding_up_margin: float = 0.15
    # Row 10: pushback vs target inequality margin.
    pushback_neq_margin: float = 0.02
    # Rows 11-12: packet-delay uptrend.
    delay_window_bins: int = 10  # 10 x 50 ms = 500 ms means
    delay_up_min_ms: float = 80.0
    delay_up_margin: float = 0.10
    # Row 13: TBS drop.
    tbs_drop_fraction: float = 0.8
    # Row 14: app bitrate above allocated TBS.
    rate_gap_time_fraction: float = 0.10
    # Row 15: cross traffic.
    cross_traffic_fraction: float = 0.20
    # Row 16: channel degradation.
    mcs_p90_threshold: float = 20.0
    mcs_low_threshold: float = 10.0
    mcs_low_count: int = 10
    # Row 17: HARQ retransmissions per window.
    harq_retx_count: int = 20
    # Row 9 small-window size (samples per mean).
    trend_window_bins: int = 10


# -- helpers -------------------------------------------------------------------


def _windowed_means(values: np.ndarray, size: int) -> np.ndarray:
    """Non-overlapping means of *size* consecutive samples."""
    n = len(values) // size
    if n == 0:
        return np.empty(0)
    return values[: n * size].reshape(n, size).mean(axis=1)


def _has_uptrend(means: np.ndarray, margin: float) -> bool:
    """True if any consecutive pair of means rises by more than margin."""
    if len(means) < 2:
        return False
    previous = means[:-1]
    nxt = means[1:]
    baseline = np.abs(previous) + 1e-9
    return bool(np.any(nxt > previous + margin * baseline))


def _has_downtrend(values: np.ndarray, margin: float) -> bool:
    """True if any consecutive pair of samples falls by more than margin."""
    if len(values) < 2:
        return False
    previous = values[:-1]
    nxt = values[1:]
    baseline = np.abs(previous) + 1e-9
    return bool(np.any(nxt < previous - margin * baseline))


# -- application events (rows 1-10); `role` is "local" or "remote" ---------------


def framerate_down(
    window: WindowView, config: EventConfig, role: str, direction: str
) -> bool:
    """Rows 1-2: max fps > 27, min fps < 25, and the max precedes the min."""
    fps = window[f"{role}_{direction}_fps"]
    valid = fps[~np.isnan(fps)]
    if len(valid) < 2:
        return False
    if valid.max() <= config.framerate_high_fps:
        return False
    if valid.min() >= config.framerate_low_fps:
        return False
    return int(np.argmax(valid)) < int(np.argmin(valid))


def resolution_down(window: WindowView, config: EventConfig, role: str) -> bool:
    """Row 3: any step down in outbound resolution."""
    resolution = window[f"{role}_outbound_resolution_p"]
    valid = resolution[~np.isnan(resolution)]
    if len(valid) < 2:
        return False
    return bool(np.any(np.diff(valid) < 0))


def jitter_buffer_drain(
    window: WindowView, config: EventConfig, role: str
) -> bool:
    """Row 4: the jitter-buffer delay reaches 0 ms."""
    delay = window[f"{role}_video_jitter_buffer_ms"]
    valid = delay[~np.isnan(delay)]
    if len(valid) == 0:
        return False
    return bool(np.any(valid <= config.jitter_buffer_zero_ms))


def target_bitrate_down(
    window: WindowView, config: EventConfig, role: str
) -> bool:
    """Row 5: downtrend in the GCC target bitrate."""
    return _has_downtrend(
        window[f"{role}_target_bitrate_bps"], config.rate_drop_margin
    )


def gcc_overuse(window: WindowView, config: EventConfig, role: str) -> bool:
    """Row 6: any 'overuse' entry in the GCC state log."""
    state = window[f"{role}_gcc_state"]
    return bool(np.any(state > 0.5))


def pushback_rate_down(
    window: WindowView, config: EventConfig, role: str
) -> bool:
    """Row 7: downtrend in the pushback rate."""
    return _has_downtrend(
        window[f"{role}_pushback_bitrate_bps"], config.rate_drop_margin
    )


def cwnd_full(window: WindowView, config: EventConfig, role: str) -> bool:
    """Row 8: outstanding bytes exceed the congestion window."""
    outstanding = window[f"{role}_outstanding_bytes"]
    cwnd = window[f"{role}_congestion_window_bytes"]
    with np.errstate(invalid="ignore"):
        ratio = outstanding / np.maximum(cwnd, 1.0)
    valid = ratio[~np.isnan(ratio)]
    return bool(np.any(valid > 1.0))


def outstanding_bytes_up(
    window: WindowView, config: EventConfig, role: str
) -> bool:
    """Row 9: uptrend in 500 ms means of outstanding bytes."""
    means = _windowed_means(
        np.nan_to_num(window[f"{role}_outstanding_bytes"]),
        config.trend_window_bins,
    )
    return _has_uptrend(means, config.outstanding_up_margin)


def pushback_neq_target(
    window: WindowView, config: EventConfig, role: str
) -> bool:
    """Row 10: pushback rate diverges from the target bitrate."""
    target = window[f"{role}_target_bitrate_bps"]
    pushback = window[f"{role}_pushback_bitrate_bps"]
    with np.errstate(invalid="ignore"):
        gap = np.abs(target - pushback) / np.maximum(np.abs(target), 1.0)
    valid = gap[~np.isnan(gap)]
    return bool(np.any(valid > config.pushback_neq_margin))


# -- network delay events (rows 11-12); `direction` is "ul" or "dl" ---------------


def packet_delay_up(
    window: WindowView, config: EventConfig, direction: str
) -> bool:
    """Rows 11-12: uptrend in windowed delay and a sample above 80 ms."""
    delay = np.nan_to_num(window[f"{direction}_packet_delay_ms"])
    if len(delay) == 0 or delay.max() <= config.delay_up_min_ms:
        return False
    means = _windowed_means(delay, config.delay_window_bins)
    return _has_uptrend(means, config.delay_up_margin)


# -- 5G events (rows 13-18) ----------------------------------------------------------


def tbs_down(window: WindowView, config: EventConfig, direction: str) -> bool:
    """Row 13: min TBS < 80% of max TBS, with the max preceding the min."""
    tbs = window[f"{direction}_tbs_bits"]
    scheduled = window[f"{direction}_scheduled"] > 0.5
    valid = tbs[scheduled]
    if len(valid) < 2:
        return False
    max_index = int(np.argmax(valid))
    min_index = int(np.argmin(valid))
    return (
        valid[min_index] < config.tbs_drop_fraction * valid[max_index]
        and max_index < min_index
    )


def rate_gap(window: WindowView, config: EventConfig, direction: str) -> bool:
    """Row 14: app bitrate exceeds the TBS-implied capacity > 10% of time."""
    app = np.nan_to_num(window[f"{direction}_app_bitrate_bps"])
    tbs = np.nan_to_num(window[f"{direction}_tbs_bitrate_bps"])
    active = app > 1_000.0  # ignore bins where nothing was sent
    if not np.any(active):
        return False
    exceed = np.logical_and(active, app > tbs)
    return float(np.mean(exceed)) > config.rate_gap_time_fraction


def cross_traffic(window: WindowView, config: EventConfig, direction: str) -> bool:
    """Row 15: other UEs' PRBs exceed 20% of the experiment UE's PRBs."""
    exp = float(np.nansum(window[f"{direction}_exp_prbs"]))
    other = float(np.nansum(window[f"{direction}_other_prbs"]))
    if exp <= 0.0:
        return False
    return other > config.cross_traffic_fraction * exp


def channel_degrades(
    window: WindowView, config: EventConfig, direction: str
) -> bool:
    """Row 16: binned MCS p90 < 20 and > 10 bins with MCS below 10."""
    mcs = window[f"{direction}_mcs_mean"]
    valid = mcs[~np.isnan(mcs)]
    if len(valid) < config.mcs_low_count:
        return False
    p90 = float(np.percentile(valid, 90))
    low_count = int(np.sum(valid < config.mcs_low_threshold))
    return p90 < config.mcs_p90_threshold and low_count > config.mcs_low_count


def harq_retx(window: WindowView, config: EventConfig, direction: str) -> bool:
    """Row 17: more than N HARQ retransmissions in the window."""
    return float(np.nansum(window[f"{direction}_harq_retx"])) > config.harq_retx_count


def rlc_retx(window: WindowView, config: EventConfig, direction: str) -> bool:
    """Row 18: any RLC retransmission entry in the gNB log."""
    return float(np.nansum(window[f"{direction}_rlc_retx"])) > 0


# -- rows 19-20 ----------------------------------------------------------------------


def ul_scheduling(window: WindowView, config: EventConfig) -> bool:
    """Row 19: the transmission uses the 5G uplink channel."""
    return bool(np.any(window["ul_scheduled"] > 0.5))


def rrc_change(window: WindowView, config: EventConfig) -> bool:
    """Row 20: the experiment UE's RNTI changes within the window."""
    rnti = window["ul_rnti"]
    valid = rnti[rnti > 0]
    changed = len(valid) > 1 and bool(np.any(np.diff(valid) != 0))
    if changed:
        return True
    dl_rnti = window["dl_rnti"]
    valid = dl_rnti[dl_rnti > 0]
    if len(valid) > 1 and bool(np.any(np.diff(valid) != 0)):
        return True
    events = window.get("rrc_events")
    return events is not None and bool(np.any(events > 0))


#: Registry used by the feature extractor: feature name → callable
#: taking (window, config).  Populated in repro.core.features.
DetectorFn = Callable[[WindowView, EventConfig], bool]


def build_registry() -> Dict[str, DetectorFn]:
    """Build the feature-name → detector mapping for all 36 features."""
    registry: Dict[str, DetectorFn] = {}

    def bind(name: str, fn: Callable, *args) -> None:
        registry[name] = lambda window, config, fn=fn, args=args: fn(
            window, config, *args
        )

    for role in ("local", "remote"):
        bind(f"{role}_inbound_framerate_down", framerate_down, role, "inbound")
        bind(f"{role}_outbound_framerate_down", framerate_down, role, "outbound")
        bind(f"{role}_outbound_resolution_down", resolution_down, role)
        bind(f"{role}_jitter_buffer_drain", jitter_buffer_drain, role)
        bind(f"{role}_target_bitrate_down", target_bitrate_down, role)
        bind(f"{role}_gcc_overuse", gcc_overuse, role)
        bind(f"{role}_pushback_rate_down", pushback_rate_down, role)
        bind(f"{role}_cwnd_full", cwnd_full, role)
        bind(f"{role}_outstanding_bytes_up", outstanding_bytes_up, role)
        bind(f"{role}_pushback_neq_target", pushback_neq_target, role)
    for direction in ("ul", "dl"):
        bind(f"{direction}_delay_up", packet_delay_up, direction)
        bind(f"{direction}_tbs_down", tbs_down, direction)
        bind(f"{direction}_rate_gap", rate_gap, direction)
        bind(f"{direction}_cross_traffic", cross_traffic, direction)
        bind(f"{direction}_channel_degrades", channel_degrades, direction)
        bind(f"{direction}_harq_retx", harq_retx, direction)
        bind(f"{direction}_rlc_retx", rlc_retx, direction)
    registry["ul_scheduling"] = lambda window, config: ul_scheduling(
        window, config
    )
    registry["rrc_change"] = lambda window, config: rrc_change(window, config)
    return registry


# =============================================================================
# Vectorized (batch) implementations: one call evaluates every window.
#
# Inputs are (n_windows, W) matrices; outputs are (n_windows,) bool
# arrays.  Row k of each matrix holds exactly the samples the reference
# detector sees for window k, so equivalence reduces to doing the same
# numpy arithmetic with ``axis=1``.  The only genuinely tricky parts are
# the conditions defined over the *compacted* valid subsequence
# (argmax/argmin order, consecutive-valid-pair trends), handled by the
# helpers below.
# =============================================================================


def _batch_windowed_means(matrix: np.ndarray, size: int) -> np.ndarray:
    """Row-wise non-overlapping means of *size* consecutive samples."""
    n_windows, width = matrix.shape
    n = width // size
    if n == 0:
        return np.empty((n_windows, 0))
    return matrix[:, : n * size].reshape(n_windows, n, size).mean(axis=2)


def _batch_has_uptrend(means: np.ndarray, margin: float) -> np.ndarray:
    """Row-wise :func:`_has_uptrend`."""
    if means.shape[1] < 2:
        return np.zeros(means.shape[0], dtype=bool)
    previous = means[:, :-1]
    nxt = means[:, 1:]
    baseline = np.abs(previous) + 1e-9
    return np.any(nxt > previous + margin * baseline, axis=1)


def _batch_has_downtrend(values: np.ndarray, margin: float) -> np.ndarray:
    """Row-wise :func:`_has_downtrend` (NaN pairs compare False)."""
    if values.shape[1] < 2:
        return np.zeros(values.shape[0], dtype=bool)
    previous = values[:, :-1]
    nxt = values[:, 1:]
    baseline = np.abs(previous) + 1e-9
    return np.any(nxt < previous - margin * baseline, axis=1)


def _batch_extrema_ordered(
    values: np.ndarray, valid: np.ndarray
) -> "tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]":
    """Per-row (max, min, count, max-before-min) over the valid subset.

    Matches ``argmax(compacted) < argmin(compacted)`` in the reference
    detectors: compaction preserves order, so comparing the positions of
    the *first* occurrence of the max and min among valid samples in the
    original row is equivalent.  Rows whose valid subset contains NaN
    yield NaN extrema (comparisons on them are False, exactly like the
    reference, whose ``valid[argmin] < … * valid[argmax]`` also goes
    through NaN).
    """
    vmax = np.where(valid, values, -np.inf).max(axis=1, initial=-np.inf)
    vmin = np.where(valid, values, np.inf).min(axis=1, initial=np.inf)
    count = valid.sum(axis=1)
    first_max = np.argmax(valid & (values == vmax[:, None]), axis=1)
    first_min = np.argmax(valid & (values == vmin[:, None]), axis=1)
    return vmax, vmin, count, first_max < first_min


def _batch_compacted_pair_any(
    values: np.ndarray, valid: np.ndarray, not_equal: bool = False
) -> np.ndarray:
    """Row-wise "any consecutive *valid* pair satisfies the predicate".

    With ``not_equal=False`` the predicate is ``current < previous``
    (``diff(compacted) < 0``); with ``not_equal=True`` it is
    ``current != previous`` (``diff(compacted) != 0``).  Invalid samples
    are skipped, exactly like ``values[valid_mask]`` compaction, by
    forward-propagating the last valid sample's value.
    """
    n_windows, width = values.shape
    if width < 2:
        return np.zeros(n_windows, dtype=bool)
    positions = np.where(valid, np.arange(width), 0)
    np.maximum.accumulate(positions, axis=1, out=positions)
    # Last valid position at or before column j-1 → the "previous valid
    # value" candidate for column j; guarded by has_prev below.
    prev_value = np.take_along_axis(values, positions[:, :-1], axis=1)
    has_prev = np.cumsum(valid, axis=1)[:, :-1] > 0
    current = values[:, 1:]
    if not_equal:
        hit = current != prev_value
    else:
        hit = current < prev_value
    return np.any(valid[:, 1:] & has_prev & hit, axis=1)


# -- application events ---------------------------------------------------------


def framerate_down_batch(
    windows: BatchWindowView, config: EventConfig, role: str, direction: str
) -> np.ndarray:
    fps = windows[f"{role}_{direction}_fps"]
    valid = ~np.isnan(fps)
    vmax, vmin, count, ordered = _batch_extrema_ordered(fps, valid)
    return (
        (count >= 2)
        & (vmax > config.framerate_high_fps)
        & (vmin < config.framerate_low_fps)
        & ordered
    )


def resolution_down_batch(
    windows: BatchWindowView, config: EventConfig, role: str
) -> np.ndarray:
    resolution = windows[f"{role}_outbound_resolution_p"]
    return _batch_compacted_pair_any(resolution, ~np.isnan(resolution))


def jitter_buffer_drain_batch(
    windows: BatchWindowView, config: EventConfig, role: str
) -> np.ndarray:
    delay = windows[f"{role}_video_jitter_buffer_ms"]
    return np.any(delay <= config.jitter_buffer_zero_ms, axis=1)


def target_bitrate_down_batch(
    windows: BatchWindowView, config: EventConfig, role: str
) -> np.ndarray:
    return _batch_has_downtrend(
        windows[f"{role}_target_bitrate_bps"], config.rate_drop_margin
    )


def gcc_overuse_batch(
    windows: BatchWindowView, config: EventConfig, role: str
) -> np.ndarray:
    return np.any(windows[f"{role}_gcc_state"] > 0.5, axis=1)


def pushback_rate_down_batch(
    windows: BatchWindowView, config: EventConfig, role: str
) -> np.ndarray:
    return _batch_has_downtrend(
        windows[f"{role}_pushback_bitrate_bps"], config.rate_drop_margin
    )


def cwnd_full_batch(
    windows: BatchWindowView, config: EventConfig, role: str
) -> np.ndarray:
    outstanding = windows[f"{role}_outstanding_bytes"]
    cwnd = windows[f"{role}_congestion_window_bytes"]
    with np.errstate(invalid="ignore"):
        ratio = outstanding / np.maximum(cwnd, 1.0)
    return np.any(ratio > 1.0, axis=1)


def outstanding_bytes_up_batch(
    windows: BatchWindowView, config: EventConfig, role: str
) -> np.ndarray:
    means = _batch_windowed_means(
        np.nan_to_num(windows[f"{role}_outstanding_bytes"]),
        config.trend_window_bins,
    )
    return _batch_has_uptrend(means, config.outstanding_up_margin)


def pushback_neq_target_batch(
    windows: BatchWindowView, config: EventConfig, role: str
) -> np.ndarray:
    target = windows[f"{role}_target_bitrate_bps"]
    pushback = windows[f"{role}_pushback_bitrate_bps"]
    with np.errstate(invalid="ignore"):
        gap = np.abs(target - pushback) / np.maximum(np.abs(target), 1.0)
    return np.any(gap > config.pushback_neq_margin, axis=1)


# -- network delay events -------------------------------------------------------


def packet_delay_up_batch(
    windows: BatchWindowView, config: EventConfig, direction: str
) -> np.ndarray:
    delay = np.nan_to_num(windows[f"{direction}_packet_delay_ms"])
    if delay.shape[1] == 0:
        return np.zeros(delay.shape[0], dtype=bool)
    above = delay.max(axis=1) > config.delay_up_min_ms
    means = _batch_windowed_means(delay, config.delay_window_bins)
    return above & _batch_has_uptrend(means, config.delay_up_margin)


# -- 5G events ------------------------------------------------------------------


def tbs_down_batch(
    windows: BatchWindowView, config: EventConfig, direction: str
) -> np.ndarray:
    tbs = windows[f"{direction}_tbs_bits"]
    scheduled = windows[f"{direction}_scheduled"] > 0.5
    vmax, vmin, count, ordered = _batch_extrema_ordered(tbs, scheduled)
    return (count >= 2) & (vmin < config.tbs_drop_fraction * vmax) & ordered


def rate_gap_batch(
    windows: BatchWindowView, config: EventConfig, direction: str
) -> np.ndarray:
    app = np.nan_to_num(windows[f"{direction}_app_bitrate_bps"])
    tbs = np.nan_to_num(windows[f"{direction}_tbs_bitrate_bps"])
    active = app > 1_000.0
    exceed = np.logical_and(active, app > tbs)
    return np.any(active, axis=1) & (
        exceed.mean(axis=1) > config.rate_gap_time_fraction
    )


def cross_traffic_batch(
    windows: BatchWindowView, config: EventConfig, direction: str
) -> np.ndarray:
    exp = np.nansum(windows[f"{direction}_exp_prbs"], axis=1)
    other = np.nansum(windows[f"{direction}_other_prbs"], axis=1)
    return (exp > 0.0) & (other > config.cross_traffic_fraction * exp)


def channel_degrades_batch(
    windows: BatchWindowView, config: EventConfig, direction: str
) -> np.ndarray:
    """Vectorized prechecks; exact per-window percentile on survivors.

    ``np.percentile`` interpolation must match the reference bit for
    bit, so the (rare) windows that pass both count gates evaluate it on
    their compacted valid samples exactly as the reference does.
    """
    mcs = windows[f"{direction}_mcs_mean"]
    valid = ~np.isnan(mcs)
    count = valid.sum(axis=1)
    low_count = (mcs < config.mcs_low_threshold).sum(axis=1)
    out = np.zeros(mcs.shape[0], dtype=bool)
    candidates = (count >= config.mcs_low_count) & (
        low_count > config.mcs_low_count
    )
    for row in np.flatnonzero(candidates):
        p90 = float(np.percentile(mcs[row][valid[row]], 90))
        out[row] = p90 < config.mcs_p90_threshold
    return out


def harq_retx_batch(
    windows: BatchWindowView, config: EventConfig, direction: str
) -> np.ndarray:
    retx = np.nansum(windows[f"{direction}_harq_retx"], axis=1)
    return retx > config.harq_retx_count


def rlc_retx_batch(
    windows: BatchWindowView, config: EventConfig, direction: str
) -> np.ndarray:
    return np.nansum(windows[f"{direction}_rlc_retx"], axis=1) > 0


def ul_scheduling_batch(
    windows: BatchWindowView, config: EventConfig
) -> np.ndarray:
    return np.any(windows["ul_scheduled"] > 0.5, axis=1)


def rrc_change_batch(
    windows: BatchWindowView, config: EventConfig
) -> np.ndarray:
    ul_rnti = windows["ul_rnti"]
    changed = _batch_compacted_pair_any(
        ul_rnti, ul_rnti > 0, not_equal=True
    )
    dl_rnti = windows["dl_rnti"]
    changed = changed | _batch_compacted_pair_any(
        dl_rnti, dl_rnti > 0, not_equal=True
    )
    events = windows.get("rrc_events")
    if events is not None:
        changed = changed | np.any(events > 0, axis=1)
    return changed


#: Batch registry entry: callable(batch windows, config) → bool array.
BatchDetectorFn = Callable[[BatchWindowView, EventConfig], np.ndarray]


def build_batch_registry() -> Dict[str, BatchDetectorFn]:
    """Feature-name → vectorized detector, mirroring :func:`build_registry`."""
    registry: Dict[str, BatchDetectorFn] = {}

    def bind(name: str, fn: Callable, *args) -> None:
        registry[name] = lambda windows, config, fn=fn, args=args: fn(
            windows, config, *args
        )

    for role in ("local", "remote"):
        bind(
            f"{role}_inbound_framerate_down",
            framerate_down_batch,
            role,
            "inbound",
        )
        bind(
            f"{role}_outbound_framerate_down",
            framerate_down_batch,
            role,
            "outbound",
        )
        bind(f"{role}_outbound_resolution_down", resolution_down_batch, role)
        bind(f"{role}_jitter_buffer_drain", jitter_buffer_drain_batch, role)
        bind(f"{role}_target_bitrate_down", target_bitrate_down_batch, role)
        bind(f"{role}_gcc_overuse", gcc_overuse_batch, role)
        bind(f"{role}_pushback_rate_down", pushback_rate_down_batch, role)
        bind(f"{role}_cwnd_full", cwnd_full_batch, role)
        bind(f"{role}_outstanding_bytes_up", outstanding_bytes_up_batch, role)
        bind(f"{role}_pushback_neq_target", pushback_neq_target_batch, role)
    for direction in ("ul", "dl"):
        bind(f"{direction}_delay_up", packet_delay_up_batch, direction)
        bind(f"{direction}_tbs_down", tbs_down_batch, direction)
        bind(f"{direction}_rate_gap", rate_gap_batch, direction)
        bind(f"{direction}_cross_traffic", cross_traffic_batch, direction)
        bind(f"{direction}_channel_degrades", channel_degrades_batch, direction)
        bind(f"{direction}_harq_retx", harq_retx_batch, direction)
        bind(f"{direction}_rlc_retx", rlc_retx_batch, direction)
    registry["ul_scheduling"] = lambda windows, config: ul_scheduling_batch(
        windows, config
    )
    registry["rrc_change"] = lambda windows, config: rrc_change_batch(
        windows, config
    )
    return registry
