"""The Domino detector: sliding-window causal-chain detection engine.

Ties the pipeline together: telemetry bundle → timeline → feature
windows → compiled backward trace → per-window detections, collected in
a :class:`DominoReport` that the statistics module summarises into the
paper's Fig. 10 / Table 2 / Table 4 outputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.chains import DEFAULT_CHAINS_TEXT
from repro.core.codegen import compile_chains
from repro.core.dsl import parse_chains
from repro.core.events import EventConfig
from repro.core.features import (
    BatchFeatureExtractor,
    FeatureExtractor,
    FeatureWindow,
)
from repro.core.graph import CausalGraph
from repro.core.trace import evaluate_chains
from repro.obs.metrics import get_registry
from repro.obs.spans import span
from repro.telemetry.records import TelemetryBundle
from repro.telemetry.timeline import Timeline


@dataclass
class DetectorConfig:
    """Configuration of one Domino instance.

    Attributes:
        window_us / step_us: sliding window W and step Δt (paper: 5 s /
            0.5 s).
        dt_us: resampling bin width (paper's stats rate: 50 ms).
        events: event-condition thresholds.
        chains_text: causal-chain definitions in the text DSL; defaults
            to the paper's 24 canonical chains (direction-resolved).
        use_codegen: execute generated Python (Fig. 11) instead of the
            interpreted evaluator — results are identical; the flag
            exists for the ablation benchmark.
        use_batch: evaluate the 36 detectors with the vectorized batch
            engine (:class:`~repro.core.features.BatchFeatureExtractor`)
            instead of the per-window reference loop — results are
            identical (asserted by the equivalence tests); the flag
            exists as the oracle switch and for perf comparisons.
    """

    window_us: int = 5_000_000
    step_us: int = 500_000
    dt_us: int = 50_000
    events: EventConfig = field(default_factory=EventConfig)
    chains_text: str = DEFAULT_CHAINS_TEXT
    use_codegen: bool = True
    use_batch: bool = True


@dataclass
class WindowDetection:
    """Detections for one window position."""

    start_us: int
    end_us: int
    features: dict
    consequences: List[str]
    causes: List[str]
    chain_ids: List[int]  # indices into DominoReport.chains


@dataclass
class DominoReport:
    """All detections for one session."""

    session_name: str
    duration_us: int
    step_us: int
    chains: List[Tuple[str, ...]]
    windows: List[WindowDetection]

    @property
    def n_windows(self) -> int:
        return len(self.windows)

    def windows_with_detections(self) -> List[WindowDetection]:
        return [w for w in self.windows if w.chain_ids]

    def detected_chain_tuples(self) -> List[Tuple[str, ...]]:
        """Concrete chains detected anywhere in the session (unique)."""
        seen = {
            chain_id
            for window in self.windows
            for chain_id in window.chain_ids
        }
        return [self.chains[i] for i in sorted(seen)]


class DominoDetector:
    """End-to-end Domino analysis over telemetry bundles.

    Example::

        detector = DominoDetector()
        report = detector.analyze(bundle)
        stats = DominoStats.from_report(report)
    """

    def __init__(self, config: Optional[DetectorConfig] = None) -> None:
        self.config = config or DetectorConfig()
        self.chains = parse_chains(self.config.chains_text)
        self.graph = CausalGraph.from_chains(self.chains)
        self.extractor = FeatureExtractor(
            window_us=self.config.window_us,
            step_us=self.config.step_us,
            config=self.config.events,
        )
        self.batch_extractor = BatchFeatureExtractor(
            window_us=self.config.window_us,
            step_us=self.config.step_us,
            config=self.config.events,
        )
        self._trace_fn = (
            compile_chains(self.chains) if self.config.use_codegen else None
        )

    # -- evaluation -----------------------------------------------------------

    def _trace(self, features: dict) -> Tuple[set, set, List[int]]:
        if self._trace_fn is not None:
            return self._trace_fn(features)
        return evaluate_chains(features, self.chains)

    def analyze_timeline(
        self, timeline: Timeline, session_name: str = "", duration_us: int = 0
    ) -> DominoReport:
        """Run detection over an already-built timeline."""
        extractor = (
            self.batch_extractor if self.config.use_batch else self.extractor
        )
        # extract_all instead of the extract generator so feature
        # extraction and the backward trace get distinct spans (the
        # batch engine's extract is iter(extract_all) anyway, so the
        # windows — and therefore the detections — are unchanged).
        with span("detect.features", session=session_name):
            feature_windows = extractor.extract_all(timeline)
        windows: List[WindowDetection] = []
        with span("detect.trace", session=session_name):
            for feature_window in feature_windows:
                consequences, causes, chain_ids = self._trace(
                    feature_window.features
                )
                windows.append(
                    WindowDetection(
                        start_us=feature_window.start_us,
                        end_us=feature_window.end_us,
                        features=feature_window.features,
                        consequences=sorted(consequences),
                        causes=sorted(causes),
                        chain_ids=sorted(chain_ids),
                    )
                )
        get_registry().counter(
            "repro_windows_detected_total",
            help="Sliding windows evaluated by the detector (this process).",
        ).inc(len(windows))
        return DominoReport(
            session_name=session_name,
            duration_us=duration_us or timeline.n_bins * timeline.dt_us,
            step_us=self.config.step_us,
            chains=self.chains,
            windows=windows,
        )

    def analyze(self, bundle: TelemetryBundle) -> DominoReport:
        """Run the full pipeline on a telemetry bundle."""
        timeline = Timeline.from_bundle(bundle, dt_us=self.config.dt_us)
        return self.analyze_timeline(
            timeline,
            session_name=bundle.session_name,
            duration_us=bundle.duration_us,
        )
