"""Baseline detectors: app-only, correlation RCA, single-layer alerts."""

from repro.baselines.app_only import AppOnlyDetector
from repro.baselines.correlation import CorrelationRca
from repro.baselines.single_layer import SingleLayerAlerts
from repro.core.detector import DominoDetector


def test_app_only_sees_consequences_but_one_cause_bucket(cellular_bundle):
    report = AppOnlyDetector().analyze(cellular_bundle)
    assert report.root_cause_resolution() == 1
    assert len(report.windows) > 0
    # Consequences are visible from app stats alone.
    assert report.consequence_windows() > 0
    assert 0.0 <= report.attribution_rate() <= 1.0


def test_app_only_windows_use_app_features_only(cellular_bundle):
    report = AppOnlyDetector().analyze(cellular_bundle)
    for window in report.windows:
        for name in window.consequences:
            assert name.startswith(("local_", "remote_"))


def test_correlation_rca_produces_rankings(cellular_bundle):
    results = CorrelationRca().analyze(cellular_bundle)
    assert len(results) == 6  # 3 consequences x {local, remote}
    for result in results:
        assert len(result.ranking) > 3
        correlations = [abs(c) for _, c in result.ranking]
        assert correlations == sorted(correlations, reverse=True)
        assert all(-1.0 <= c <= 1.0 for _, c in result.ranking)


def test_correlation_rca_finds_signal_on_private_cell(private_bundle):
    """On the Amarisoft cell (poor UL channel) the correlator should put
    a UL metric near the top for at least one consequence."""
    results = CorrelationRca().analyze(private_bundle)
    top_causes = {r.top_cause for r in results if r.top_correlation > 0.1}
    assert any(name.startswith("ul_") for name in top_causes) or not top_causes


def test_single_layer_alert_volume(cellular_bundle):
    alerts = SingleLayerAlerts().analyze(cellular_bundle)
    assert alerts.n_windows > 0
    assert alerts.total_alerts > 0
    # UL scheduling fires in essentially every window; it alone exceeds
    # any consolidated chain count.
    assert alerts.alert_counts["ul_scheduling"] >= alerts.n_windows * 0.9


def test_single_layer_reduction_vs_domino(cellular_bundle):
    alerts = SingleLayerAlerts().analyze(cellular_bundle)
    report = DominoDetector().analyze(cellular_bundle)
    reduction = alerts.reduction_vs(report)
    assert reduction >= 1.0  # chaining never *increases* volume
