"""RRC state machine: scripted and random transitions, RNTI changes."""

from repro.rrc.state import RrcManager, RrcState


def _run(manager, duration_us, step=500):
    for t in range(0, duration_us, step):
        manager.step(t)


def test_stays_connected_without_triggers():
    manager = RrcManager(flap_rate_per_min=0.0, seed=1)
    _run(manager, 5_000_000)
    assert manager.transitions == []
    assert manager.is_connected(5_000_000)
    assert manager.rnti == manager.initial_rnti


def test_scripted_release_causes_outage():
    manager = RrcManager(
        flap_rate_per_min=0.0,
        outage_us=300_000,
        scripted_releases_us=[1_000_000],
        seed=1,
    )
    _run(manager, 2_000_000)
    assert len(manager.transitions) == 1
    transition = manager.transitions[0]
    assert transition.release_us == 1_000_000
    assert transition.outage_us == 300_000
    assert transition.old_rnti != transition.new_rnti


def test_outage_window_blocks_data():
    manager = RrcManager(
        flap_rate_per_min=0.0,
        outage_us=300_000,
        scripted_releases_us=[1_000_000],
        seed=1,
    )
    connected = {}
    for t in range(0, 2_000_000, 500):
        manager.step(t)
        connected[t] = manager.is_connected(t)
    assert connected[999_500]
    assert not connected[1_100_000]
    assert connected[1_400_000]


def test_state_reporting():
    manager = RrcManager(
        scripted_releases_us=[100_000], outage_us=200_000, seed=1
    )
    manager.step(0)
    assert manager.state == RrcState.CONNECTED
    manager.step(100_000)
    assert manager.state == RrcState.TRANSITIONING


def test_new_rnti_below_cross_traffic_range():
    manager = RrcManager(
        scripted_releases_us=[100_000 * i for i in range(1, 20)],
        outage_us=10_000,
        seed=3,
    )
    _run(manager, 3_000_000)
    assert len(manager.transitions) >= 10
    for transition in manager.transitions:
        assert 1_000 <= transition.new_rnti < 40_000


def test_random_flaps_rate():
    manager = RrcManager(flap_rate_per_min=30.0, outage_us=50_000, seed=5)
    _run(manager, 60_000_000, step=1000)
    # 30/min nominal; allow wide tolerance for the Poisson draw.
    assert 10 <= len(manager.transitions) <= 60


def test_deterministic_per_seed():
    def run(seed):
        manager = RrcManager(flap_rate_per_min=10.0, seed=seed)
        _run(manager, 30_000_000, step=1000)
        return [(t.release_us, t.new_rnti) for t in manager.transitions]

    assert run(11) == run(11)
