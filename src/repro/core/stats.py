"""Statistics over Domino detections: Fig. 10, Table 2, and Table 4.

All three outputs aggregate direction-resolved detections back to the
paper's (cause family × consequence family) cells:

* **Fig. 10** — absolute occurrence frequency per minute of each cause
  and consequence event.  Overlapping windows are merged into episodes
  (consecutive window positions with the event active count once).
* **Table 2** — conditional probability of each cause event co-occurring
  with a consequence event, plus the "Unknown" share of consequence
  windows where no chain explains the consequence.
* **Table 4** — each full chain's detection ratio given its consequence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.core.chains import (
    CauseKind,
    ConsequenceKind,
    classify_cause,
    classify_consequence,
)
from repro.core.detector import DominoReport, WindowDetection


def _episode_count(flags: Sequence[bool]) -> int:
    """Number of maximal runs of True in a boolean sequence."""
    count = 0
    previous = False
    for flag in flags:
        if flag and not previous:
            count += 1
        previous = flag
    return count


def active_cause_kinds(window: WindowDetection) -> Set[CauseKind]:
    """Cause families with at least one feature firing in *window*.

    One pass over the feature dict; shared by the batch statistics here
    and the incremental live aggregator (:mod:`repro.live.aggregator`),
    so both count episodes from identical activity flags.
    """
    return {
        kind
        for name, value in window.features.items()
        if value and (kind := classify_cause(name)) is not None
    }


def active_consequence_kinds(window: WindowDetection) -> Set[ConsequenceKind]:
    """Consequence families with at least one feature firing in *window*."""
    return {
        kind
        for name, value in window.features.items()
        if value and (kind := classify_consequence(name)) is not None
    }


def _cause_active(window: WindowDetection, kind: CauseKind) -> bool:
    """Whether any feature of the given cause family fired."""
    return any(
        value and classify_cause(name) is kind
        for name, value in window.features.items()
    )


def _consequence_active(window: WindowDetection, kind: ConsequenceKind) -> bool:
    return any(
        value and classify_consequence(name) is kind
        for name, value in window.features.items()
    )


@dataclass
class DominoStats:
    """Aggregated statistics over one or more session reports."""

    reports: List[DominoReport] = field(default_factory=list)

    @classmethod
    def from_report(cls, report: DominoReport) -> "DominoStats":
        return cls(reports=[report])

    @classmethod
    def from_reports(cls, reports: Iterable[DominoReport]) -> "DominoStats":
        return cls(reports=list(reports))

    @classmethod
    def merged(cls, parts: Iterable["DominoStats"]) -> "DominoStats":
        """Combine several aggregates into one (e.g. per-shard stats
        built independently and joined after the fact)."""
        return cls(reports=[r for part in parts for r in part.reports])

    def merge(self, other: "DominoStats") -> "DominoStats":
        """Non-destructive pairwise merge: ``a.merge(b).merge(c)``."""
        return DominoStats(reports=self.reports + other.reports)

    # -- shared helpers ---------------------------------------------------------

    @property
    def total_minutes(self) -> float:
        return sum(r.duration_us for r in self.reports) / 60e6

    def _all_windows(self) -> List[WindowDetection]:
        return [w for r in self.reports for w in r.windows]

    # -- Fig. 10: absolute occurrence frequencies ----------------------------------

    def cause_episode_counts(self) -> Dict[CauseKind, int]:
        """Total episodes of each cause family's events."""
        out: Dict[CauseKind, int] = {kind: 0 for kind in CauseKind}
        for report in self.reports:
            previous: Set[CauseKind] = set()
            for window in report.windows:
                active = active_cause_kinds(window)
                for kind in active - previous:  # rising edge = new episode
                    out[kind] += 1
                previous = active
        return out

    def consequence_episode_counts(self) -> Dict[ConsequenceKind, int]:
        """Total episodes of each consequence family's events."""
        out: Dict[ConsequenceKind, int] = {kind: 0 for kind in ConsequenceKind}
        for report in self.reports:
            previous: Set[ConsequenceKind] = set()
            for window in report.windows:
                active = active_consequence_kinds(window)
                for kind in active - previous:
                    out[kind] += 1
                previous = active
        return out

    def cause_frequencies_per_min(self) -> Dict[CauseKind, float]:
        """Episodes per minute of each cause family's events."""
        minutes = max(self.total_minutes, 1e-9)
        return {
            kind: episodes / minutes
            for kind, episodes in self.cause_episode_counts().items()
        }

    def consequence_frequencies_per_min(self) -> Dict[ConsequenceKind, float]:
        """Episodes per minute of each consequence family's events."""
        minutes = max(self.total_minutes, 1e-9)
        return {
            kind: episodes / minutes
            for kind, episodes in self.consequence_episode_counts().items()
        }

    def chain_episode_counts(self) -> Dict[Tuple[str, ...], int]:
        """Episodes of each concrete chain across all reports.

        Like the family frequencies above, overlapping window positions
        where the same chain stays active are merged into one episode.
        Chains that never fire are omitted.  Several chain ids can
        resolve to the same tuple (user chain files may repeat a
        chain); their activity is OR-ed before episode counting so
        duplicates never double-count.
        """
        counts: Dict[Tuple[str, ...], int] = {}
        for report in self.reports:
            flags_by_chain: Dict[Tuple[str, ...], List[bool]] = {}
            n_windows = len(report.windows)
            for index, window in enumerate(report.windows):
                for chain_id in window.chain_ids:
                    flags = flags_by_chain.setdefault(
                        report.chains[chain_id], [False] * n_windows
                    )
                    flags[index] = True
            for chain, flags in flags_by_chain.items():
                counts[chain] = counts.get(chain, 0) + _episode_count(flags)
        return counts

    def degradation_events_per_min(self) -> float:
        """Episodes per minute with any consequence active (the ~5/min
        headline number of §1)."""
        minutes = max(self.total_minutes, 1e-9)
        episodes = 0
        for report in self.reports:
            flags = [
                any(
                    _consequence_active(w, kind) for kind in ConsequenceKind
                )
                for w in report.windows
            ]
            episodes += _episode_count(flags)
        return episodes / minutes

    # -- Table 2: conditional probabilities -----------------------------------------

    def conditional_probabilities(
        self,
    ) -> Dict[ConsequenceKind, Dict[CauseKind, float]]:
        """P(cause event | consequence event), per family pair."""
        table: Dict[ConsequenceKind, Dict[CauseKind, float]] = {}
        windows = self._all_windows()
        for consequence in ConsequenceKind:
            relevant = [
                w for w in windows if _consequence_active(w, consequence)
            ]
            row: Dict[CauseKind, float] = {}
            for cause in CauseKind:
                if not relevant:
                    row[cause] = 0.0
                    continue
                hits = sum(1 for w in relevant if _cause_active(w, cause))
                row[cause] = hits / len(relevant)
            table[consequence] = row
        return table

    def unknown_fractions(self) -> Dict[ConsequenceKind, float]:
        """Fraction of consequence windows no detected chain explains
        (Table 2's 'Unknown' column)."""
        out: Dict[ConsequenceKind, float] = {}
        for consequence in ConsequenceKind:
            relevant: List[WindowDetection] = []
            explained = 0
            for report in self.reports:
                for window in report.windows:
                    if not _consequence_active(window, consequence):
                        continue
                    relevant.append(window)
                    kinds = {
                        classify_consequence(report.chains[i][-1])
                        for i in window.chain_ids
                    }
                    if consequence in kinds:
                        explained += 1
            out[consequence] = (
                1.0 - explained / len(relevant) if relevant else 0.0
            )
        return out

    # -- Table 4: chain ratios ---------------------------------------------------------

    def chain_ratios(
        self,
    ) -> Dict[ConsequenceKind, Dict[CauseKind, float]]:
        """P(full chain cause→consequence detected | consequence event)."""
        table: Dict[ConsequenceKind, Dict[CauseKind, float]] = {}
        for consequence in ConsequenceKind:
            row: Dict[CauseKind, float] = {kind: 0.0 for kind in CauseKind}
            denominator = 0
            hits: Dict[CauseKind, int] = {kind: 0 for kind in CauseKind}
            for report in self.reports:
                for window in report.windows:
                    if not _consequence_active(window, consequence):
                        continue
                    denominator += 1
                    seen: Set[CauseKind] = set()
                    for chain_id in window.chain_ids:
                        chain = report.chains[chain_id]
                        if classify_consequence(chain[-1]) is not consequence:
                            continue
                        cause = classify_cause(chain[0])
                        if cause is not None:
                            seen.add(cause)
                    for cause in seen:
                        hits[cause] += 1
            if denominator:
                for cause in CauseKind:
                    row[cause] = hits[cause] / denominator
            table[consequence] = row
        return table

    # -- cause attribution shares (the §1 headline percentages) ------------------------

    def cause_attribution_shares(self) -> Dict[CauseKind, float]:
        """Share of detected chains attributed to each cause family
        (the '28% cross traffic, 42% retransmissions...' numbers)."""
        counts: Dict[CauseKind, int] = {kind: 0 for kind in CauseKind}
        total = 0
        for report in self.reports:
            for window in report.windows:
                seen: Set[CauseKind] = set()
                for chain_id in window.chain_ids:
                    cause = classify_cause(report.chains[chain_id][0])
                    if cause is not None:
                        seen.add(cause)
                for cause in seen:
                    counts[cause] += 1
                    total += 1
        if total == 0:
            return {kind: 0.0 for kind in CauseKind}
        return {kind: count / total for kind, count in counts.items()}
