"""Table 2: conditional probability of each 5G cause given a WebRTC
consequence, commercial (blue) vs private (red) cells.

Paper highlights reproduced as assertions: UL scheduling and HARQ are
prevalent across both deployments; RLC ReTX appears only on private
cells (commercial RLC telemetry is unavailable); RRC transitions appear
only on the commercial FDD cell; private cells show more poor-channel
involvement.
"""

from conftest import save_result

from repro.core.chains import CauseKind, ConsequenceKind
from repro.core.detector import DominoDetector
from repro.core.report import render_conditional_table
from repro.core.stats import DominoStats


def test_table2_conditional_probabilities(
    benchmark, commercial_results, private_results
):
    detector = DominoDetector()

    def build():
        commercial = DominoStats.from_reports(
            detector.analyze(r.bundle) for r in commercial_results
        )
        private = DominoStats.from_reports(
            detector.analyze(r.bundle) for r in private_results
        )
        return commercial, private

    commercial, private = benchmark.pedantic(build, rounds=1, iterations=1)
    text = render_conditional_table(commercial, private)
    save_result("table2_conditional", text)

    commercial_table = commercial.conditional_probabilities()
    private_table = private.conditional_probabilities()

    for consequence in ConsequenceKind:
        # RLC causes invisible on commercial cells (no gNB log).
        assert commercial_table[consequence][CauseKind.RLC_RETX] == 0.0
        # No RRC flaps on private cells.
        assert private_table[consequence][CauseKind.RRC_STATE] == 0.0
        # UL scheduling is prevalent in both deployments (paper: tens of
        # percent in every row).
        assert commercial_table[consequence][CauseKind.UL_SCHEDULING] > 0.2
        assert private_table[consequence][CauseKind.UL_SCHEDULING] > 0.2

    # Private cells: poor channel accompanies consequences more often.
    poor_private = sum(
        private_table[c][CauseKind.POOR_CHANNEL] for c in ConsequenceKind
    )
    poor_commercial = sum(
        commercial_table[c][CauseKind.POOR_CHANNEL] for c in ConsequenceKind
    )
    assert poor_private > poor_commercial
