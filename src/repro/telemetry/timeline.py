"""Time-aligned, uniformly resampled view of a telemetry bundle.

Domino's event conditions (Table 5) operate on windows of synchronised
time series.  :class:`Timeline` resamples all four telemetry sources of a
:class:`~repro.telemetry.records.TelemetryBundle` onto one uniform grid
(default 50 ms — the paper's WebRTC stats rate), producing named numpy
arrays.  Bins without records hold NaN (or 0 for counters) and sparse
app-state series are forward-filled, matching how the paper's pipeline
vectorises its data before the sliding-window pass (§4.2).

Naming convention (all per-bin):

* ``local_*`` / ``remote_*`` — application metrics of the cellular and
  wired client respectively (outbound = that client's sent stream).
* ``ul_*`` / ``dl_*`` — 5G/packet metrics per physical direction
  (uplink = cellular client → network).

Ingestion is single-pass and vectorized: each record list is walked
exactly once to pull its fields into flat numpy arrays (the only
per-record Python work), and every per-bin aggregate is then a
``np.bincount`` / ``np.minimum.at`` / fancy-assignment over those
arrays.  Accumulation order per bin equals record order — the same
order the per-record loops used — so the resulting series are
bit-identical to the loop formulation.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.errors import TelemetryError
from repro.obs.metrics import get_registry
from repro.obs.spans import span
from repro.telemetry.records import (
    GnbLogKind,
    StreamKind,
    TelemetryBundle,
)

#: GCC network-state encoding in the resampled arrays.
GCC_STATE_CODE = {"underuse": -1, "normal": 0, "overuse": 1}


def _forward_fill(values: np.ndarray) -> np.ndarray:
    """Forward-fill NaNs in place (leading NaNs become 0)."""
    mask = np.isnan(values)
    if not mask.any():
        return values
    idx = np.where(~mask, np.arange(len(values)), 0)
    np.maximum.accumulate(idx, out=idx)
    filled = values[idx]
    filled[np.isnan(filled)] = 0.0
    return filled


@dataclass
class Timeline:
    """Uniform cross-layer time series for one session.

    Attributes:
        dt_us: bin width of the grid.
        n_bins: number of bins.
        series: mapping from variable name to a float array of length
            ``n_bins``.
    """

    dt_us: int
    n_bins: int
    series: Dict[str, np.ndarray] = field(default_factory=dict)

    #: App-stat fields copied per client from WebRtcStatsRecord.
    _APP_FIELDS = (
        "inbound_fps",
        "outbound_fps",
        "outbound_resolution_p",
        "inbound_resolution_p",
        "video_jitter_buffer_ms",
        "audio_jitter_buffer_ms",
        "target_bitrate_bps",
        "pushback_bitrate_bps",
        "outstanding_bytes",
        "congestion_window_bytes",
        "gcc_trend_slope",
        "gcc_threshold",
    )

    @classmethod
    def from_bundle(
        cls, bundle: TelemetryBundle, dt_us: int = 50_000
    ) -> "Timeline":
        """Resample *bundle* onto a uniform grid of *dt_us* bins."""
        if dt_us <= 0:
            raise TelemetryError("dt_us must be positive")
        n_bins = max(1, math.ceil(bundle.duration_us / dt_us))
        with span("ingest.from_bundle", n_bins=n_bins):
            timeline = cls(dt_us=dt_us, n_bins=n_bins)
            timeline._ingest_webrtc(bundle)
            timeline._ingest_packets(bundle)
            timeline._ingest_dci(bundle)
            timeline._ingest_gnb_log(bundle)
        registry = get_registry()
        registry.counter(
            "repro_bundles_ingested_total",
            help="Telemetry bundles resampled into timelines.",
        ).inc()
        registry.counter(
            "repro_bins_ingested_total",
            help="Uniform timeline bins produced by ingest.",
        ).inc(n_bins)
        return timeline

    # -- construction helpers -------------------------------------------------

    def _bin(self, ts_us: int) -> Optional[int]:
        index = ts_us // self.dt_us
        if 0 <= index < self.n_bins:
            return int(index)
        return None

    def _new(self, name: str, fill: float = np.nan) -> np.ndarray:
        array = np.full(self.n_bins, fill, dtype=float)
        self.series[name] = array
        return array

    def _bin_indices(self, ts_us: np.ndarray) -> "tuple[np.ndarray, np.ndarray]":
        """Vectorized :meth:`_bin`: (bin index, in-range mask)."""
        index = ts_us // self.dt_us
        return index, (index >= 0) & (index < self.n_bins)

    def _ingest_webrtc(self, bundle: TelemetryBundle) -> None:
        for role in ("local", "remote"):
            for fieldname in self._APP_FIELDS:
                self._new(f"{role}_{fieldname}")
            self._new(f"{role}_gcc_state")
            self._new(f"{role}_frozen", 0.0)
            self._new(f"{role}_concealed", 0.0)
            self._new(f"{role}_total_samples", 0.0)
        records = bundle.webrtc_stats
        n = len(records)
        ts = np.fromiter((r.ts_us for r in records), np.int64, n)
        index, in_range = self._bin_indices(ts)
        wired = bundle.wired_client
        cellular = bundle.cellular_client
        remote_mask = np.fromiter(
            (r.client == wired for r in records), np.bool_, n
        )
        if cellular == wired:
            # Degenerate naming: dict-lookup ingestion resolved the
            # shared name to "remote"; keep that.
            local_mask = np.zeros(n, dtype=np.bool_)
        else:
            local_mask = np.fromiter(
                (r.client == cellular for r in records), np.bool_, n
            )
        columns = {
            fieldname: np.fromiter(
                (getattr(r, fieldname) for r in records), np.float64, n
            )
            for fieldname in self._APP_FIELDS
        }
        columns["gcc_state"] = np.fromiter(
            (GCC_STATE_CODE.get(r.gcc_state, 0) for r in records),
            np.float64,
            n,
        )
        columns["frozen"] = np.fromiter(
            (r.frozen for r in records), np.float64, n
        )
        concealed = np.fromiter(
            (r.concealed_samples for r in records), np.float64, n
        )
        total = np.fromiter((r.total_samples for r in records), np.float64, n)
        for role, role_mask in (("local", local_mask), ("remote", remote_mask)):
            mask = in_range & role_mask
            idx = index[mask]
            # Fancy assignment applies duplicates in order: the last
            # record landing in a bin wins, as in per-record ingestion.
            for name, values in columns.items():
                self.series[f"{role}_{name}"][idx] = values[mask]
            np.add.at(self.series[f"{role}_concealed"], idx, concealed[mask])
            np.add.at(self.series[f"{role}_total_samples"], idx, total[mask])
        for name in list(self.series):
            if name.endswith(("_frozen", "_concealed", "_total_samples")):
                continue
            if name.startswith(("local_", "remote_")):
                self.series[name] = _forward_fill(self.series[name])

    def _ingest_packets(self, bundle: TelemetryBundle) -> None:
        packets = bundle.packets
        n = len(packets)
        sent = np.fromiter((p.sent_us for p in packets), np.int64, n)
        is_uplink = np.fromiter(
            (p.is_uplink for p in packets), np.bool_, n
        )
        size = np.fromiter((p.size_bytes for p in packets), np.float64, n)
        # -1 marks a lost packet; real receive timestamps are >= 0.
        received = np.fromiter(
            (
                -1 if p.received_us is None else p.received_us
                for p in packets
            ),
            np.int64,
            n,
        )
        is_rtcp = np.fromiter(
            (p.stream is StreamKind.RTCP for p in packets), np.bool_, n
        )
        index, in_range = self._bin_indices(sent)
        delivered = received >= 0
        delay = (received - sent).astype(np.float64)
        for direction, flag in (("ul", True), ("dl", False)):
            mask = in_range & (is_uplink == flag)
            nb = self.n_bins
            bytes_sent = np.bincount(
                index[mask], weights=size[mask], minlength=nb
            )
            lost = np.bincount(
                index[mask & ~delivered], minlength=nb
            ).astype(float)
            data = mask & delivered & ~is_rtcp
            delay_sum = np.bincount(
                index[data], weights=delay[data], minlength=nb
            )
            delay_count = np.bincount(index[data], minlength=nb).astype(float)
            rtcp = mask & delivered & is_rtcp
            rtcp_delay_sum = np.bincount(
                index[rtcp], weights=delay[rtcp], minlength=nb
            )
            rtcp_delay_count = np.bincount(index[rtcp], minlength=nb).astype(
                float
            )
            with np.errstate(invalid="ignore"):
                delay_ms = np.where(
                    delay_count > 0, delay_sum / np.maximum(delay_count, 1), np.nan
                ) / 1000.0
                rtcp_ms = np.where(
                    rtcp_delay_count > 0,
                    rtcp_delay_sum / np.maximum(rtcp_delay_count, 1),
                    np.nan,
                ) / 1000.0
            self.series[f"{direction}_packet_delay_ms"] = _forward_fill(delay_ms)
            self.series[f"{direction}_rtcp_delay_ms"] = _forward_fill(rtcp_ms)
            self.series[f"{direction}_lost_packets"] = lost
            # App send rate in bit/s over each bin (condition 14 input).
            self.series[f"{direction}_app_bitrate_bps"] = (
                bytes_sent * 8.0 * 1e6 / self.dt_us
            )

    #: Cross-traffic UEs use RNTIs at or above this value by convention
    #: (see :class:`repro.mac.crosstraffic.CrossTrafficUe`); everything
    #: below belongs to the experiment UE (whose RNTI changes across RRC
    #: transitions).  Earlier ingest collected the set of observed
    #: sub-floor RNTIs and tested membership per record — which reduces
    #: to ``record.rnti < _CROSS_TRAFFIC_RNTI_FLOOR`` directly, with no
    #: per-direction set rebuild.
    _CROSS_TRAFFIC_RNTI_FLOOR = 40_000

    def _ingest_dci(self, bundle: TelemetryBundle) -> None:
        records = bundle.dci
        n = len(records)
        ts = np.fromiter((r.ts_us for r in records), np.int64, n)
        rnti = np.fromiter((r.rnti for r in records), np.int64, n)
        is_uplink = np.fromiter((r.is_uplink for r in records), np.bool_, n)
        n_prb = np.fromiter((r.n_prb for r in records), np.float64, n)
        index, in_range = self._bin_indices(ts)
        is_experiment = rnti < self._CROSS_TRAFFIC_RNTI_FLOOR
        # MCS/TBS/retx only matter for the experiment UE, typically a
        # small minority of grants next to cross traffic — pull those
        # columns from the compressed sublist instead of the full list.
        experiment_records = list(
            itertools.compress(records, is_experiment.tolist())
        )
        m = len(experiment_records)
        mcs = np.fromiter(
            (r.mcs for r in experiment_records), np.float64, m
        )
        tbs = np.fromiter(
            (r.tbs_bits for r in experiment_records), np.float64, m
        )
        is_retx = np.fromiter(
            (r.is_retx for r in experiment_records), np.bool_, m
        )
        exp_index = index[is_experiment]
        exp_in_range = in_range[is_experiment]
        exp_uplink = is_uplink[is_experiment]
        exp_rnti = rnti[is_experiment]
        exp_prb = n_prb[is_experiment]
        nb = self.n_bins
        for direction, flag in (("ul", True), ("dl", False)):
            exp = exp_in_range & (exp_uplink == flag)
            idx = exp_index[exp]
            exp_prbs = np.bincount(idx, weights=exp_prb[exp], minlength=nb)
            harq_retx = np.bincount(
                exp_index[exp & is_retx], minlength=nb
            ).astype(float)
            new_data = exp & ~is_retx
            tbs_bits = np.bincount(
                exp_index[new_data], weights=tbs[new_data], minlength=nb
            )
            mcs_sum = np.bincount(idx, weights=mcs[exp], minlength=nb)
            mcs_count = np.bincount(idx, minlength=nb).astype(float)
            mcs_min = np.full(nb, np.inf)
            np.minimum.at(mcs_min, idx, mcs[exp])
            mcs_min[mcs_count == 0] = np.nan
            rnti_series = np.full(nb, np.nan)
            rnti_series[idx] = exp_rnti[exp]  # duplicates: last record wins
            other = in_range & (is_uplink == flag) & ~is_experiment
            other_prbs = np.bincount(
                index[other], weights=n_prb[other], minlength=nb
            )
            with np.errstate(invalid="ignore"):
                mcs_mean = np.where(
                    mcs_count > 0, mcs_sum / np.maximum(mcs_count, 1), np.nan
                )
            self.series[f"{direction}_exp_prbs"] = exp_prbs
            self.series[f"{direction}_other_prbs"] = other_prbs
            self.series[f"{direction}_tbs_bits"] = tbs_bits
            self.series[f"{direction}_tbs_bitrate_bps"] = (
                tbs_bits * 1e6 / self.dt_us
            )
            self.series[f"{direction}_harq_retx"] = harq_retx
            self.series[f"{direction}_mcs_mean"] = mcs_mean  # NaN = not sched.
            self.series[f"{direction}_mcs_min"] = mcs_min
            self.series[f"{direction}_scheduled"] = (mcs_count > 0).astype(
                float
            )
            self.series[f"{direction}_rnti"] = _forward_fill(rnti_series)

    def _ingest_gnb_log(self, bundle: TelemetryBundle) -> None:
        records = bundle.gnb_log
        n = len(records)
        ts = np.fromiter((r.ts_us for r in records), np.int64, n)
        is_buffer = np.fromiter(
            (r.kind is GnbLogKind.RLC_BUFFER for r in records), np.bool_, n
        )
        is_rlc_retx = np.fromiter(
            (r.kind is GnbLogKind.RLC_RETX for r in records), np.bool_, n
        )
        is_rrc = np.fromiter(
            (
                r.kind is GnbLogKind.RRC_RELEASE
                or r.kind is GnbLogKind.RRC_CONNECT
                for r in records
            ),
            np.bool_,
            n,
        )
        is_uplink = np.fromiter((r.is_uplink for r in records), np.bool_, n)
        buffer_values = np.fromiter(
            (r.buffer_bytes for r in records), np.float64, n
        )
        index, in_range = self._bin_indices(ts)
        nb = self.n_bins
        for direction, flag in (("ul", True), ("dl", False)):
            mask = in_range & (is_uplink == flag)
            buffer_bytes = np.full(nb, np.nan)
            buffered = mask & is_buffer
            buffer_bytes[index[buffered]] = buffer_values[buffered]
            rlc_retx = np.bincount(
                index[mask & is_rlc_retx], minlength=nb
            ).astype(float)
            self.series[f"{direction}_rlc_buffer_bytes"] = _forward_fill(
                buffer_bytes
            )
            self.series[f"{direction}_rlc_retx"] = rlc_retx
        self.series["rrc_events"] = np.bincount(
            index[in_range & is_rrc], minlength=nb
        ).astype(float)

    # -- accessors -----------------------------------------------------------

    def __getitem__(self, name: str) -> np.ndarray:
        try:
            return self.series[name]
        except KeyError:
            raise TelemetryError(f"timeline has no series named {name!r}")

    def __contains__(self, name: str) -> bool:
        return name in self.series

    @property
    def t_us(self) -> np.ndarray:
        """Bin start times."""
        return np.arange(self.n_bins, dtype=np.int64) * self.dt_us

    def window(self, start_bin: int, length_bins: int) -> "Dict[str, np.ndarray]":
        """Slice every series to [start_bin, start_bin + length_bins)."""
        stop = min(self.n_bins, start_bin + length_bins)
        return {
            name: values[start_bin:stop] for name, values in self.series.items()
        }
