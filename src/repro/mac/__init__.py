"""5G NR medium-access-control models.

Implements the MAC-layer mechanisms the paper traces quality degradation
to: PRB scheduling under cross traffic (:mod:`repro.mac.scheduler`,
:mod:`repro.mac.crosstraffic`), the uplink request-grant loop with
optional proactive grants (:mod:`repro.mac.ulgrant`), and HARQ
retransmissions (:mod:`repro.mac.harq`).
"""

from repro.mac.crosstraffic import CrossTrafficModel, CrossTrafficUe
from repro.mac.harq import HarqEntity, HarqOutcome, TransportBlock
from repro.mac.scheduler import Allocation, DlScheduler
from repro.mac.ulgrant import UlGrant, UlGrantLoop

__all__ = [
    "CrossTrafficModel",
    "CrossTrafficUe",
    "HarqEntity",
    "HarqOutcome",
    "TransportBlock",
    "Allocation",
    "DlScheduler",
    "UlGrant",
    "UlGrantLoop",
]
