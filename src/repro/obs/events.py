"""Structured span events and the JSONL trace file they land in.

An :class:`ObsEvent` is the durable record a closed span emits: the
span's dotted name, its full ancestry path, wall-clock start, duration,
and the merged attribute bag (own attributes layered over ancestors').
Events are serialized through the :mod:`repro.schema` wire codec so
trace files carry the same ``"schema"`` version stamp as every other
artifact in the repo and stay readable across format evolution.

This module stays a leaf on purpose: ``repro.schema.wire`` imports it
to register the codec, so it must not import schema (or anything above
it) at module level.  Serialization helpers lazy-import schema inside
the call, the same pattern ``fleet.executor.SessionOutcome`` uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator


@dataclass
class ObsEvent:
    """One completed span occurrence.

    ``path`` is the ``/``-joined ancestry including the span itself
    (e.g. ``fleet.scenario/detect.features``), which lets a report
    group self-time without re-deriving nesting from timestamps.

    ``trace_id`` / ``span_id`` / ``parent_span_id`` are empty unless a
    distributed trace context was active when the span closed (see
    :mod:`repro.obs.trace`).  They are defaulted so pre-trace event
    logs decode unchanged.
    """

    name: str
    path: str
    ts_s: float
    duration_s: float
    attrs: Dict[str, Any] = field(default_factory=dict)
    trace_id: str = ""
    span_id: str = ""
    parent_span_id: str = ""

    def to_json(self) -> Dict[str, Any]:
        """Versioned wire form (lazy schema import to avoid a cycle)."""
        from repro.schema import obs_event_to_wire

        return obs_event_to_wire(self)

    @classmethod
    def from_json(cls, payload: Dict[str, Any]) -> "ObsEvent":
        from repro.schema import obs_event_from_wire

        return obs_event_from_wire(payload)


def iter_events(path: str) -> Iterator[ObsEvent]:
    """Stream ObsEvents out of a JSONL trace file.

    Blank lines are skipped; malformed lines raise, because a trace
    file is written by one process with atomic line appends and damage
    means something is actually wrong.
    """
    import json

    with open(path, "r", encoding="utf-8") as fh:
        for raw in fh:
            line = raw.strip()
            if not line:
                continue
            yield ObsEvent.from_json(json.loads(line))


__all__ = ["ObsEvent", "iter_events"]
