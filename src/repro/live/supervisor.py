"""Per-session supervision: one StreamingDomino behind a bounded queue.

A :class:`SessionSupervisor` owns one session's pipeline: a pump task
drains the session's :class:`~repro.live.sources.TelemetrySource` into a
bounded ingest queue, and a consume task feeds each batch into a
:class:`~repro.core.streaming.StreamingDomino`, advances it to the
batch watermark, and hands the completed window detections to the
service's aggregator.

Backpressure policy is explicit:

* ``"block"`` (default) — the pump awaits queue space, pausing the
  source; nothing is ever dropped, so a replayed trace yields
  detections byte-identical to the offline detector.
* ``"drop_oldest"`` — the pump never blocks; when the queue is full the
  oldest batch is discarded and its records are counted in
  :attr:`SessionSupervisor.lag_events`.  The mode for wall-clock
  sources where falling behind is worse than losing telemetry.

The supervisor/aggregator split mirrors a worker/coordinator layout: a
supervisor only needs its own feed and detector, so supervisors could
move to other processes or hosts with the aggregator folding their
detections exactly as it does in-process today.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.core.detector import DetectorConfig, WindowDetection
from repro.core.streaming import StreamingDomino
from repro.errors import ConfigError
from repro.live.sources import TelemetryBatch, TelemetrySource
from repro.obs.metrics import get_registry
from repro.obs.spans import span

#: Supervisor lifecycle states, in order of appearance.
RUNNING, DONE, EVICTED, FAILED = "running", "done", "evicted", "failed"

#: on_detections(session_id, detections, chains, watermark_us)
DetectionSink = Callable[
    [str, List[WindowDetection], List[Tuple[str, ...]], int], None
]


@dataclass
class SessionSnapshot:
    """One session's line in a fleet snapshot (JSON-serializable)."""

    session_id: str
    profile: str
    impairment: str
    state: str
    watermark_s: float  # telemetry time processed
    wall_s: float  # wall time since the supervisor started
    realtime_factor: float  # watermark_s / wall_s
    lag_events: int  # records dropped by backpressure
    queue_depth: int
    buffered_records: int
    pending_records: int
    eviction_watermark_s: float
    windows: int
    detected_windows: int

    def to_json(self) -> dict:
        # Canonical serde lives in repro.schema; the import is lazy
        # because schema's registry imports this module's dataclass.
        from repro.schema import session_snapshot_to_wire

        return session_snapshot_to_wire(self)

    @classmethod
    def from_json(cls, data: dict) -> "SessionSnapshot":
        from repro.schema import session_snapshot_from_wire

        return session_snapshot_from_wire(data)


class SessionSupervisor:
    """Supervise one live session end to end.

    Args:
        source: the session's telemetry feed.
        detector_config: Domino configuration for this session.
        chunk_us: StreamingDomino processing-chunk span.
        queue_batches: ingest queue bound (batches, not records).
        backpressure: ``"block"`` or ``"drop_oldest"`` (see module
            docstring).
        advance_interval_us: minimum telemetry time between
            ``advance()`` calls.  Each advance re-collects its chunk, so
            advancing on every 1 s ingest batch costs ~5× more than
            advancing once per completed window; coalescing is what lets
            one core sustain 64+ concurrent sessions.  Detection
            latency grows to at most this interval; the feed (and the
            reported watermark) is never delayed.
        adaptive_advance: autotune the advance interval at runtime —
            back off (doubling, up to ``max_advance_interval_us``) while
            the ingest queue stays deep or drop-oldest backpressure is
            shedding records, speed back up (halving, down to
            ``min_advance_interval_us``) after sustained idle.  Advance
            cadence only changes *when* completed windows are handed
            downstream, never *which* windows: detections stay
            byte-identical to the fixed-interval pipeline, and lag
            accounting is untouched.
        min_advance_interval_us / max_advance_interval_us: adaptive
            bounds; default to ¼× and 8× the base interval.
        on_detections: sink invoked with every non-empty detection
            batch, typically ``LiveAggregator.update`` via the service.
    """

    #: Consecutive empty-queue batches before adaptivity speeds up.
    IDLE_BATCHES_TO_SPEED_UP = 4

    def __init__(
        self,
        source: TelemetrySource,
        detector_config: Optional[DetectorConfig] = None,
        *,
        chunk_us: int = 30_000_000,
        queue_batches: int = 64,
        backpressure: str = "block",
        advance_interval_us: int = 5_000_000,
        adaptive_advance: bool = False,
        min_advance_interval_us: Optional[int] = None,
        max_advance_interval_us: Optional[int] = None,
        on_detections: Optional[DetectionSink] = None,
    ) -> None:
        if backpressure not in ("block", "drop_oldest"):
            raise ConfigError(
                "backpressure must be 'block' or 'drop_oldest', "
                f"not {backpressure!r}"
            )
        self.source = source
        self.stream = StreamingDomino(
            config=detector_config or DetectorConfig(),
            chunk_us=chunk_us,
            gnb_log_available=source.gnb_log_available,
        )
        self.backpressure = backpressure
        self.advance_interval_us = advance_interval_us
        self.adaptive_advance = adaptive_advance
        self.min_advance_interval_us = (
            min_advance_interval_us
            if min_advance_interval_us is not None
            else max(advance_interval_us // 4, 1)
        )
        self.max_advance_interval_us = (
            max_advance_interval_us
            if max_advance_interval_us is not None
            else advance_interval_us * 8
        )
        self._lag_seen = 0
        self._idle_batches = 0
        self.on_detections = on_detections
        self._queue: asyncio.Queue = asyncio.Queue(maxsize=queue_batches)
        self.lag_events = 0
        self.watermark_us = 0
        self._last_advance_us = 0
        self._feed_watermark_us = 0
        self.detected_windows = 0
        self.state = RUNNING
        self.error: Optional[BaseException] = None
        self._started_at: Optional[float] = None
        self.last_progress_at: Optional[float] = None
        self._tasks: List[asyncio.Task] = []

    # -- identity ---------------------------------------------------------------

    @property
    def session_id(self) -> str:
        return self.source.session_id

    @property
    def done(self) -> bool:
        return self.state in (DONE, EVICTED, FAILED)

    # -- pipeline ---------------------------------------------------------------

    async def _enqueue(self, batch: Optional[TelemetryBatch]) -> None:
        if batch is not None:
            self._feed_watermark_us = max(
                self._feed_watermark_us, batch.watermark_us
            )
        if self.backpressure == "block":
            await self._queue.put(batch)
            return
        while True:
            try:
                self._queue.put_nowait(batch)
                return
            except asyncio.QueueFull:
                dropped = self._queue.get_nowait()
                if dropped is not None:
                    self.lag_events += len(dropped.records)
                    get_registry().counter(
                        "repro_live_lag_records_total",
                        help="Records shed by drop_oldest backpressure.",
                    ).inc(len(dropped.records))
            # Yield so the consumer can run between forced drops.
            await asyncio.sleep(0)

    async def _pump(self) -> None:
        async for batch in self.source.batches():
            await self._enqueue(batch)
        await self._enqueue(None)  # end of feed

    async def _consume(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            batch = await self._queue.get()
            if batch is None:
                # End of feed.  Flush to the feed's final watermark:
                # drop-oldest may have discarded late batches (their
                # records are lost and counted as lag), but the tail
                # windows they would have completed must still emit.
                self._flush(self._feed_watermark_us)
                break
            with span(
                "live.drain",
                session=self.session_id,
                n_records=len(batch.records),
            ):
                for record in batch.records:
                    self.stream.feed(record)
            self.watermark_us = max(self.watermark_us, batch.watermark_us)
            self.last_progress_at = loop.time()
            self._adapt_advance_interval()
            if not batch.final and (
                batch.watermark_us - self._last_advance_us
                < self.advance_interval_us
            ):
                await asyncio.sleep(0)
                continue
            self._flush(batch.watermark_us)
            # One batch per loop turn: keep 64 sessions interleaving.
            await asyncio.sleep(0)

    def _adapt_advance_interval(self) -> None:
        """Autotune advance coalescing from queue pressure (one batch).

        Sustained lag (dropped records, or a half-full ingest queue)
        doubles the interval — fewer, larger advances shed detector
        cost so the consumer catches up.  Sustained idle (empty queue)
        halves it back — detection latency shrinks when there is slack.
        """
        if not self.adaptive_advance:
            return
        qsize = self._queue.qsize()
        maxsize = self._queue.maxsize
        lagged = self.lag_events > self._lag_seen
        # maxsize >= 2: with a 1-deep queue, `qsize >= maxsize // 2`
        # would be `>= 0` — always true, pinning the interval at max
        # even when idle.  A 1-deep queue signals pressure through lag
        # events alone.
        if lagged or (maxsize >= 2 and qsize >= max(maxsize // 2, 1)):
            self._lag_seen = self.lag_events
            self._idle_batches = 0
            self.advance_interval_us = min(
                self.advance_interval_us * 2, self.max_advance_interval_us
            )
        elif qsize == 0:
            self._idle_batches += 1
            if self._idle_batches >= self.IDLE_BATCHES_TO_SPEED_UP:
                self._idle_batches = 0
                self.advance_interval_us = max(
                    self.advance_interval_us // 2,
                    self.min_advance_interval_us,
                )
        else:
            self._idle_batches = 0

    def _flush(self, watermark_us: int) -> None:
        """Advance the stream and hand completed windows downstream."""
        with span("live.advance", session=self.session_id):
            detections = self.stream.advance(watermark_us)
        self._last_advance_us = max(self._last_advance_us, watermark_us)
        self.watermark_us = max(self.watermark_us, watermark_us)
        if detections:
            self.detected_windows += sum(
                1 for w in detections if w.chain_ids
            )
            if self.on_detections is not None:
                self.on_detections(
                    self.session_id,
                    detections,
                    self.stream.chains,
                    watermark_us,
                )

    async def run(self) -> None:
        """Run the session to completion (or until evicted/cancelled)."""
        if self.done:
            return
        loop = asyncio.get_running_loop()
        self._started_at = self.last_progress_at = loop.time()
        pump = asyncio.create_task(self._pump())
        consume = asyncio.create_task(self._consume())
        self._tasks = [pump, consume]
        try:
            await asyncio.gather(pump, consume)
        except asyncio.CancelledError:
            if self.state == RUNNING:
                self.state = EVICTED
            raise
        except BaseException as exc:
            self.state = FAILED
            self.error = exc
            for task in self._tasks:
                task.cancel()
            raise
        else:
            if self.state == RUNNING:
                self.state = DONE

    def evict(self) -> None:
        """Cancel the session's tasks and mark it evicted (idle feed)."""
        if self.done:
            return
        self.state = EVICTED
        for task in self._tasks:
            task.cancel()

    # -- reporting --------------------------------------------------------------

    def idle_for_s(self, now: float) -> float:
        """Seconds since the consumer last made progress."""
        if self.last_progress_at is None:
            return 0.0
        return now - self.last_progress_at

    def snapshot(self, now: float) -> SessionSnapshot:
        wall_s = max(
            now - (self._started_at if self._started_at is not None else now),
            1e-9,
        )
        return SessionSnapshot(
            session_id=self.session_id,
            profile=self.source.profile,
            impairment=self.source.impairment,
            state=self.state,
            watermark_s=self.watermark_us / 1e6,
            wall_s=wall_s,
            realtime_factor=self.watermark_us / 1e6 / wall_s,
            lag_events=self.lag_events,
            queue_depth=self._queue.qsize(),
            buffered_records=self.stream.buffered_records,
            pending_records=self.stream.pending_record_count,
            eviction_watermark_s=self.stream.eviction_watermark_us / 1e6,
            windows=self.stream.windows_emitted,
            detected_windows=self.detected_windows,
        )


__all__ = [
    "DONE",
    "EVICTED",
    "FAILED",
    "RUNNING",
    "SessionSnapshot",
    "SessionSupervisor",
]
