"""repro — reproduction of Domino (IMC 2025).

Automated, cross-layer root cause analysis of 5G video-conferencing
quality degradation: a full simulation substrate (5G RAN, network paths,
WebRTC + GCC) plus the Domino causal-chain detection tool.

Quickstart::

    from repro import DominoDetector, DominoStats
    from repro.datasets import TMOBILE_FDD, run_cellular_session

    result = run_cellular_session(TMOBILE_FDD, duration_s=60, seed=1)
    report = DominoDetector().analyze(result.bundle)
    stats = DominoStats.from_report(report)
    print(stats.degradation_events_per_min())
"""

from repro.core.detector import DetectorConfig, DominoDetector
from repro.core.dsl import parse_chains
from repro.core.stats import DominoStats
from repro.telemetry.records import TelemetryBundle
from repro.telemetry.timeline import Timeline

__version__ = "1.0.0"

__all__ = [
    "DetectorConfig",
    "DominoDetector",
    "DominoStats",
    "TelemetryBundle",
    "Timeline",
    "parse_chains",
    "__version__",
]
