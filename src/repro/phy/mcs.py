"""Modulation and coding scheme (MCS) and transport block size (TBS) tables.

5G NR maps channel quality to an MCS index; the MCS determines the
modulation order (bits per resource element) and the channel-coding rate.
Together with the number of allocated physical resource blocks (PRBs) they
determine the transport block size (TBS) — how many information bits one
scheduling grant can carry.  This module implements a faithful simplification
of 3GPP TS 38.214 §5.1.3: the 64-QAM MCS table (Table 5.1.3.1-1) and the
resource-element-counting TBS computation.

The paper's causal analysis only needs the *shape* of these functions: TBS
grows with both PRBs and MCS, and poor channels force low MCS which shrinks
the TBS for the same PRB allocation (§5.1.1, Fig. 12).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import List

#: Resource elements per PRB per slot that are usable for data.  A PRB spans
#: 12 subcarriers over 14 OFDM symbols = 168 REs; we subtract typical DMRS +
#: control overhead, which 3GPP captures with N_RE = 12 * (14 - overhead).
DATA_RE_PER_PRB = 12 * 12  # 144

MAX_MCS = 27


@dataclass(frozen=True)
class McsEntry:
    """One row of the MCS table.

    Attributes:
        index: MCS index, 0..27.
        modulation_order: bits per modulation symbol (2 = QPSK, 4 = 16QAM,
            6 = 64QAM).
        code_rate: effective channel-code rate (0..1).
        spectral_efficiency: modulation_order * code_rate, bits per RE.
    """

    index: int
    modulation_order: int
    code_rate: float

    @property
    def spectral_efficiency(self) -> float:
        return self.modulation_order * self.code_rate


# 3GPP TS 38.214 Table 5.1.3.1-1 (MCS index table 1 for PDSCH), code rate
# given as R x 1024 in the spec; stored here already divided.
_MCS_ROWS = [
    (0, 2, 120 / 1024),
    (1, 2, 157 / 1024),
    (2, 2, 193 / 1024),
    (3, 2, 251 / 1024),
    (4, 2, 308 / 1024),
    (5, 2, 379 / 1024),
    (6, 2, 449 / 1024),
    (7, 2, 526 / 1024),
    (8, 2, 602 / 1024),
    (9, 2, 679 / 1024),
    (10, 4, 340 / 1024),
    (11, 4, 378 / 1024),
    (12, 4, 434 / 1024),
    (13, 4, 490 / 1024),
    (14, 4, 553 / 1024),
    (15, 4, 616 / 1024),
    (16, 4, 658 / 1024),
    (17, 6, 438 / 1024),
    (18, 6, 466 / 1024),
    (19, 6, 517 / 1024),
    (20, 6, 567 / 1024),
    (21, 6, 616 / 1024),
    (22, 6, 666 / 1024),
    (23, 6, 719 / 1024),
    (24, 6, 772 / 1024),
    (25, 6, 822 / 1024),
    (26, 6, 873 / 1024),
    (27, 6, 910 / 1024),
]


@lru_cache(maxsize=1)
def mcs_table() -> List[McsEntry]:
    """Return the full MCS table (index 0..:data:`MAX_MCS`)."""
    return [McsEntry(i, qm, r) for i, qm, r in _MCS_ROWS]


def transport_block_size_bits(n_prb: int, mcs: int) -> int:
    """Transport block size in bits for *n_prb* PRBs at MCS index *mcs*.

    Uses the RE-counting approach of TS 38.214 §5.1.3.2: the number of
    usable data REs times the spectral efficiency, quantised to whole bits.
    Returns 0 for empty allocations.
    """
    if n_prb <= 0:
        return 0
    if not 0 <= mcs <= MAX_MCS:
        raise ValueError(f"MCS index {mcs} out of range 0..{MAX_MCS}")
    entry = mcs_table()[mcs]
    raw = DATA_RE_PER_PRB * n_prb * entry.spectral_efficiency
    return max(int(raw), 1)


# --- Link adaptation: SINR -> CQI -> MCS -------------------------------------

#: SINR (dB) thresholds at which each CQI (1..15) becomes decodable at the
#: 10% BLER target.  Standard link-level values (approximately 2 dB apart).
_CQI_SINR_THRESHOLDS_DB = [
    -6.7, -4.7, -2.3, 0.2, 2.4, 4.3, 5.9, 8.1,
    10.3, 11.7, 14.1, 16.3, 18.7, 21.0, 22.7,
]

#: CQI (1..15) to a representative MCS index.
_CQI_TO_MCS = [0, 0, 2, 4, 6, 8, 10, 12, 14, 16, 18, 20, 22, 24, 26]


def cqi_from_sinr(sinr_db: float) -> int:
    """Map an SINR in dB to a CQI index (0..15).

    CQI 0 means "out of range" — no transmission should be attempted.
    """
    cqi = 0
    for i, threshold in enumerate(_CQI_SINR_THRESHOLDS_DB):
        if sinr_db >= threshold:
            cqi = i + 1
    return cqi


def mcs_from_cqi(cqi: int, conservative_offset: int = 0) -> int:
    """Map a CQI (0..15) to an MCS index.

    Args:
        cqi: channel quality indicator; 0 maps to MCS 0 (most robust).
        conservative_offset: how many MCS steps to back off from the
            CQI-implied MCS.  The Amarisoft cell in the paper uses a
            "conservative UL MCS selection strategy" (§3); a positive
            offset models that.
    """
    if cqi <= 0:
        return 0
    cqi = min(cqi, 15)
    mcs = _CQI_TO_MCS[cqi - 1] - conservative_offset
    return max(0, min(MAX_MCS, mcs))


def required_sinr_db(mcs: int) -> float:
    """SINR (dB) at which MCS index *mcs* hits the 10% BLER target."""
    if not 0 <= mcs <= MAX_MCS:
        raise ValueError(f"MCS index {mcs} out of range 0..{MAX_MCS}")
    # Invert the CQI->MCS mapping: find the smallest CQI whose MCS >= mcs.
    for cqi_minus_1, mapped in enumerate(_CQI_TO_MCS):
        if mapped >= mcs:
            return _CQI_SINR_THRESHOLDS_DB[cqi_minus_1]
    return _CQI_SINR_THRESHOLDS_DB[-1]


def bler(mcs: int, sinr_db: float, slope_db: float = 1.5) -> float:
    """Block error rate of a transport block sent at *mcs* under *sinr_db*.

    Modeled as a logistic curve centred at the MCS's required SINR with a
    waterfall slope of *slope_db* dB, calibrated so that BLER = 10% exactly
    at the required SINR.  This reproduces the qualitative behaviour the
    paper relies on: aggressive MCS selection or sudden fades make HARQ
    retransmissions common (§5.2.2).
    """
    margin_db = sinr_db - required_sinr_db(mcs)
    # Logistic waterfall, calibrated so bler(margin=0) = 0.1 and falling
    # as the margin grows: 1/(1 + e^(2x)) with x = margin/slope + ln(9)/2.
    x = margin_db / slope_db + math.log(9.0) / 2.0
    # Clamp the exponent to avoid overflow for extreme SINRs.
    x = max(min(x, 30.0), -30.0)
    return 1.0 / (1.0 + math.exp(2.0 * x))
