"""repro.obs — zero-dependency observability for the RCA pipeline.

Three layers, all process-local and always importable:

- **Metrics** (:mod:`repro.obs.metrics`): counters, gauges, and
  fixed-bucket histograms in a :class:`MetricsRegistry`, rendered as
  Prometheus text via ``render_prom()``.
- **Spans** (:mod:`repro.obs.spans`): ``span(name, **attrs)`` timing
  contexts on the hot path, feeding the ``repro_span_seconds``
  histogram and — when a sink is installed — a versioned JSONL event
  trace.
- **Reports** (:mod:`repro.obs.report`): ``repro obs report`` turns a
  trace file into a per-stage time breakdown.
- **Distributed tracing** (:mod:`repro.obs.trace`): per-scenario
  trace contexts propagated across the cluster wire, collected as
  :class:`TraceSpan` records, and rendered as end-to-end timelines.
- **Profiling** (:mod:`repro.obs.profile`): a sampling wall-clock
  profiler with collapsed-stack (flamegraph) output behind the CLI
  ``--profile`` flag.

The package deliberately imports nothing outside the stdlib at module
level (events/metrics/spans/logs are leaves), so any subsystem can
instrument itself without creating an import cycle.
"""

from repro.obs.events import ObsEvent, iter_events
from repro.obs.logs import get_logger, setup_logging
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    parse_prom,
    parse_prom_samples,
    sample_key,
    write_metrics_file,
)
from repro.obs.profile import SamplingProfiler, profile_to_file
from repro.obs.report import (
    StageSummary,
    expand_event_paths,
    render_obs_report,
    report_from_file,
    report_from_files,
    summarize_events,
)
from repro.obs.spans import (
    SPAN_HISTOGRAM,
    EventSink,
    JsonlSink,
    ListSink,
    current_attrs,
    disable,
    enable,
    get_sink,
    get_trace_context,
    is_enabled,
    new_span_id,
    reset_trace_context,
    set_sink,
    set_trace_context,
    span,
    span_quantile_s,
)
from repro.obs.trace import (
    ABANDONED,
    TraceCollector,
    TraceContext,
    TraceSpan,
    assemble_traces,
    make_span,
    new_trace_id,
    orphan_spans,
    render_trace_timeline,
    trace_scope,
)

__all__ = [
    "ABANDONED",
    "DEFAULT_BUCKETS",
    "SPAN_HISTOGRAM",
    "Counter",
    "EventSink",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "ListSink",
    "MetricsRegistry",
    "ObsEvent",
    "SamplingProfiler",
    "StageSummary",
    "TraceCollector",
    "TraceContext",
    "TraceSpan",
    "assemble_traces",
    "current_attrs",
    "disable",
    "enable",
    "expand_event_paths",
    "get_logger",
    "get_registry",
    "get_sink",
    "get_trace_context",
    "is_enabled",
    "iter_events",
    "make_span",
    "new_span_id",
    "new_trace_id",
    "orphan_spans",
    "parse_prom",
    "parse_prom_samples",
    "profile_to_file",
    "render_obs_report",
    "render_trace_timeline",
    "report_from_file",
    "report_from_files",
    "reset_trace_context",
    "sample_key",
    "set_sink",
    "set_trace_context",
    "setup_logging",
    "span",
    "span_quantile_s",
    "summarize_events",
    "trace_scope",
    "write_metrics_file",
]
