"""Fig. 5: campus Zoom dataset — network jitter by access type.

Paper: jitter is consistently higher on cellular than on wired or Wi-Fi,
in both directions.  The x-axis spans 0-50 ms.
"""

from conftest import save_result

from repro.analysis.ascii import render_cdf
from repro.analysis.cdf import compute_cdf
from repro.datasets.zoom import (
    AccessType,
    ZoomDatasetConfig,
    ZoomDatasetGenerator,
    records_by_access,
)


def test_fig5_zoom_jitter(benchmark):
    def build():
        records = ZoomDatasetGenerator(ZoomDatasetConfig(seed=11)).generate()
        grouped = records_by_access(records)
        curves = {}
        for direction, attr in (
            ("outbound", "outbound_jitter_ms"),
            ("inbound", "inbound_jitter_ms"),
        ):
            for access in AccessType:
                curves[f"{direction} {access.value}"] = compute_cdf(
                    [getattr(r, attr) for r in grouped[access]]
                )
        return curves

    curves = benchmark.pedantic(build, rounds=1, iterations=1)
    text = render_cdf(curves, quantiles=(25, 50, 75, 90, 99), unit="ms")
    save_result("fig5_zoom_jitter", text)

    for direction in ("outbound", "inbound"):
        cellular = curves[f"{direction} cellular"]
        wifi = curves[f"{direction} wifi"]
        wired = curves[f"{direction} wired"]
        assert cellular.median > wifi.median > wired.median
        assert cellular.percentile(90) > wifi.percentile(90)
