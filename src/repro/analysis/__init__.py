"""Analysis helpers: CDFs, session summaries, terminal rendering."""

from repro.analysis.cdf import Cdf, compute_cdf
from repro.analysis.summarize import (
    SessionSummary,
    packet_delays_ms,
    summarize_session,
)
from repro.analysis.ascii import render_cdf, render_series, render_table

__all__ = [
    "Cdf",
    "compute_cdf",
    "SessionSummary",
    "packet_delays_ms",
    "summarize_session",
    "render_cdf",
    "render_series",
    "render_table",
]
