"""Timing spans: nested, attribute-carrying, asyncio-safe.

``span("detect.features", session="s0")`` times a block, observes the
duration into the ``repro_span_seconds{span=...}`` histogram on the
default registry, and — when a sink is installed — emits an
:class:`~repro.obs.events.ObsEvent` carrying the span's ancestry path
and the merged attributes of every enclosing span.

Design constraints, in order:

1.  **Cheap when idle.**  With spans disabled (``obs.disable()``) the
    context manager is two attribute loads and a boolean check; no
    clock reads, no contextvar writes.  With spans enabled but no sink
    installed, the cost is two ``perf_counter`` reads, one histogram
    observation, and one contextvar set/reset — no allocation of event
    objects and no serialization.  That is what keeps the <2% overhead
    budget honest on the scaling benchmark.
2.  **Correct under asyncio and threads.**  The ancestry stack lives in
    a :mod:`contextvars.ContextVar`, so concurrent sessions in the live
    supervisor each see their own stack.
3.  **Zero instrumentation in workers by default.**  Sinks are
    process-local; a ProcessPool child never inherits the parent's
    sink, so fleet workers stay unobserved unless explicitly wired.
"""

from __future__ import annotations

import contextvars
import json
import os
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.events import ObsEvent
from repro.obs.metrics import get_registry

#: Histogram every span observes into, labelled by span name.
SPAN_HISTOGRAM = "repro_span_seconds"

# (name, merged_attrs, span_id) per enclosing span, innermost last.
# span_id is "" unless a distributed trace context is active.
_stack: contextvars.ContextVar[
    Tuple[Tuple[str, Dict[str, Any], str], ...]
] = contextvars.ContextVar("repro_obs_span_stack", default=())

# The ambient distributed-trace context (duck-typed: anything carrying
# ``.trace_id`` / ``.span_id`` string attributes, normally a
# ``repro.obs.trace.TraceContext``).  Lives here, not in trace.py,
# because ``span()`` must read it on every close and spans.py cannot
# import trace.py without a cycle.
_trace: contextvars.ContextVar[Optional[Any]] = contextvars.ContextVar(
    "repro_obs_trace_ctx", default=None
)

_enabled = True
_sink: Optional["EventSink"] = None


def new_span_id() -> str:
    """A fresh 64-bit hex span id (W3C traceparent span-id width)."""
    return os.urandom(8).hex()


def set_trace_context(ctx: Optional[Any]) -> "contextvars.Token":
    """Install (or clear, with None) the ambient trace context.

    Returns the contextvar token; pass it to
    :func:`reset_trace_context` to restore the previous context.  The
    context rides the same :mod:`contextvars` machinery as the span
    stack, so concurrent asyncio tasks each see their own trace.
    """
    return _trace.set(ctx)


def reset_trace_context(token: "contextvars.Token") -> None:
    _trace.reset(token)


def get_trace_context() -> Optional[Any]:
    """The ambient trace context, or None when tracing is inactive."""
    return _trace.get()


def enable() -> None:
    """Turn span timing on (the default)."""
    global _enabled
    _enabled = True


def disable() -> None:
    """Turn span timing off entirely — spans become near-no-ops."""
    global _enabled
    _enabled = False


def is_enabled() -> bool:
    return _enabled


def set_sink(sink: Optional["EventSink"]) -> Optional["EventSink"]:
    """Install (or clear, with None) the process event sink.

    Returns the previous sink so callers can restore it.
    """
    global _sink
    previous = _sink
    _sink = sink
    return previous


def get_sink() -> Optional["EventSink"]:
    return _sink


def current_attrs() -> Dict[str, Any]:
    """Merged attributes of the innermost active span (empty if none)."""
    stack = _stack.get()
    if not stack:
        return {}
    return dict(stack[-1][1])


def span_quantile_s(name: str, q: float) -> Optional[float]:
    """Estimated q-quantile of a span's duration, or None if unseen.

    Reads the ``repro_span_seconds`` histogram on the default registry
    — the health-pane accessor for p50/p99 advance latency and friends.
    """
    histogram = get_registry().get(SPAN_HISTOGRAM)
    if histogram is None or not histogram.count(span=name):  # type: ignore[attr-defined]
        return None
    return float(histogram.quantile(q, span=name))  # type: ignore[attr-defined]


class EventSink:
    """Interface: receives one ObsEvent per closed span."""

    def emit(self, event: ObsEvent) -> None:  # pragma: no cover
        raise NotImplementedError

    def close(self) -> None:
        pass


class ListSink(EventSink):
    """In-memory sink for tests and the obs-report golden path."""

    def __init__(self) -> None:
        self.events: List[ObsEvent] = []

    def emit(self, event: ObsEvent) -> None:
        self.events.append(event)


class JsonlSink(EventSink):
    """Append-only JSONL trace file, one versioned event per line."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._lock = threading.Lock()
        self._fh = open(path, "a", encoding="utf-8")

    def emit(self, event: ObsEvent) -> None:
        line = json.dumps(
            event.to_json(), sort_keys=True, separators=(",", ":")
        )
        with self._lock:
            self._fh.write(line + "\n")

    def close(self) -> None:
        with self._lock:
            if not self._fh.closed:
                self._fh.flush()
                self._fh.close()


class span:
    """Context manager timing one named block.

    Usage::

        with span("fleet.scenario", scenario=spec.scenario_id):
            outcome = run_scenario(spec)

    Attributes given to a span are visible (merged) on every event
    emitted by spans nested inside it; inner values win on collision.
    """

    __slots__ = ("name", "attrs", "_t0", "_ts", "_token", "_active")

    def __init__(self, name: str, **attrs: Any) -> None:
        self.name = name
        self.attrs = attrs
        self._active = False
        self._token = None
        self._t0 = 0.0
        self._ts = 0.0

    def __enter__(self) -> "span":
        if not _enabled:
            return self
        self._active = True
        stack = _stack.get()
        if stack:
            merged = dict(stack[-1][1])
            merged.update(self.attrs)
        else:
            merged = dict(self.attrs)
        span_id = "" if _trace.get() is None else new_span_id()
        self._token = _stack.set(stack + ((self.name, merged, span_id),))
        self._ts = time.time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if not self._active:
            return
        duration = time.perf_counter() - self._t0
        stack = _stack.get()
        _stack.reset(self._token)
        self._active = False
        get_registry().histogram(
            SPAN_HISTOGRAM, help="Span durations by name."
        ).observe(duration, span=self.name)
        sink = _sink
        if sink is not None:
            name, merged, span_id = stack[-1]
            path = "/".join(entry[0] for entry in stack)
            if exc_type is not None:
                merged = dict(merged)
                merged["error"] = exc_type.__name__
            ctx = _trace.get()
            if ctx is not None and span_id:
                trace_id = ctx.trace_id
                # Parent is the enclosing in-process span; a root-level
                # span parents to the propagated remote context span.
                parent = stack[-2][2] if len(stack) > 1 else ""
                parent = parent or ctx.span_id
            else:
                trace_id = span_id = parent = ""
            sink.emit(
                ObsEvent(
                    name=name,
                    path=path,
                    ts_s=self._ts,
                    duration_s=duration,
                    attrs=merged,
                    trace_id=trace_id,
                    span_id=span_id,
                    parent_span_id=parent,
                )
            )


__all__ = [
    "SPAN_HISTOGRAM",
    "EventSink",
    "JsonlSink",
    "ListSink",
    "current_attrs",
    "disable",
    "enable",
    "get_sink",
    "get_trace_context",
    "is_enabled",
    "new_span_id",
    "reset_trace_context",
    "set_sink",
    "set_trace_context",
    "span",
    "span_quantile_s",
]
