"""Fig. 3: minimum jitter-buffer delay, 5G vs wired, audio and video.

Paper: cellular jitter-buffer delays exceed wired for both media types
and both directions, pushing mouth-to-ear delay past the ITU-T G.114
interactivity thresholds (150 ms impacted / 400 ms unacceptable) far
more often than wired.
"""

import numpy as np
from conftest import save_result

from repro.analysis.ascii import render_cdf
from repro.analysis.cdf import compute_cdf
from repro.analysis.summarize import stats_series


def _pooled(results, client, fieldname):
    return np.concatenate(
        [stats_series(r.bundle, client, fieldname) for r in results]
    )


def test_fig3_jitter_buffer_delay(benchmark, fdd_results, wired_results):
    def build():
        curves = {}
        for label, results in (("cellular", fdd_results), ("wired", wired_results)):
            bundle = results[0].bundle
            local, remote = bundle.cellular_client, bundle.wired_client
            # UL stream buffers live at the remote receiver, DL at local.
            curves[f"UL video {label}"] = compute_cdf(
                _pooled(results, remote, "video_jitter_buffer_ms")
            )
            curves[f"DL video {label}"] = compute_cdf(
                _pooled(results, local, "video_jitter_buffer_ms")
            )
            curves[f"UL audio {label}"] = compute_cdf(
                _pooled(results, remote, "audio_jitter_buffer_ms")
            )
            curves[f"DL audio {label}"] = compute_cdf(
                _pooled(results, local, "audio_jitter_buffer_ms")
            )
        return curves

    curves = benchmark.pedantic(build, rounds=1, iterations=1)
    text = render_cdf(curves, quantiles=(25, 50, 75, 90, 99), unit="ms")
    itu = []
    for label, cdf in curves.items():
        above_150 = 1.0 - cdf.probability_at(150.0)
        above_400 = 1.0 - cdf.probability_at(400.0)
        itu.append(
            f"{label:<22} >150ms: {above_150 * 100:5.1f}%   "
            f">400ms: {above_400 * 100:5.1f}%"
        )
    save_result(
        "fig3_jitter_buffer", text + "\n\nITU-T G.114 exposure:\n" + "\n".join(itu)
    )

    # Cellular holds media in the buffer longer than wired.
    assert (
        curves["UL video cellular"].percentile(90)
        > curves["UL video wired"].percentile(90)
    )
    assert (
        curves["DL video cellular"].percentile(90)
        >= curves["DL video wired"].percentile(90)
    )
    # Cellular exceeds the 150 ms interactivity threshold more often.
    cellular_exposure = 1.0 - curves["DL video cellular"].probability_at(150.0)
    wired_exposure = 1.0 - curves["DL video wired"].probability_at(150.0)
    assert cellular_exposure >= wired_exposure
