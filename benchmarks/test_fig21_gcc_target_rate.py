"""Fig. 21: delay surges drive the trendline over the threshold, GCC
declares overuse and multiplicatively cuts the target rate, dropping the
outbound frame rate (and eventually the resolution).

Paper annotations: ① delay increases, ② delay-variation slope exceeds
the adaptive threshold, ③ overuse detected, ④ target rate multiplica-
tively decreased, ⑤ frame rate / resolution drop.
"""

import numpy as np
from conftest import save_result

from repro.analysis.ascii import render_series
from repro.datasets.workloads import gcc_target_rate_session
from repro.telemetry.timeline import Timeline

EVENTS_S = (3.0, 8.0)


def test_fig21_gcc_target_rate(benchmark):
    def build():
        session = gcc_target_rate_session(seed=4)
        result = session.run(13_000_000)
        return Timeline.from_bundle(result.bundle)

    timeline = benchmark.pedantic(build, rounds=1, iterations=1)
    t = timeline.t_us / 1e6
    series = {
        "delay_ms": timeline["ul_packet_delay_ms"],
        "trend_slope": timeline["local_gcc_trend_slope"],
        "threshold": timeline["local_gcc_threshold"],
        "gcc_state": timeline["local_gcc_state"],
        "target_Mbps": timeline["local_target_bitrate_bps"] / 1e6,
        "out_fps": timeline["local_outbound_fps"],
    }
    text = render_series(
        t,
        series,
        n_points=26,
        annotations={
            EVENTS_S[0]: "(1) delay increases",
            EVENTS_S[0] + 0.5: "(2) slope > threshold",
            EVENTS_S[0] + 0.8: "(3) overuse detected",
            EVENTS_S[0] + 1.2: "(4) target rate cut",
            EVENTS_S[0] + 1.8: "(5) frame rate drops",
        },
    )
    save_result("fig21_gcc_target_rate", text)

    overuse = timeline["local_gcc_state"] > 0.5
    assert overuse.any()  # (3)
    target = timeline["local_target_bitrate_bps"]

    hits = 0
    for event_s in EVENTS_S:
        window = (t >= event_s) & (t < event_s + 3.5)
        before = (t >= event_s - 2.0) & (t < event_s)
        delay = np.nan_to_num(timeline["ul_packet_delay_ms"])
        assert delay[window].max() > 2 * max(delay[before].mean(), 1.0)  # (1)
        if overuse[window].any():
            hits += 1
            # (4) target rate during/after the event falls below the
            # pre-event peak.
            assert np.nanmin(target[window]) < np.nanmax(target[before])
    assert hits >= 1  # at least one of the two surges triggers GCC

    # (2) when overuse fires, the logged slope exceeded the threshold.
    slope = np.nan_to_num(timeline["local_gcc_trend_slope"])
    threshold = np.nan_to_num(timeline["local_gcc_threshold"])
    overuse_bins = np.where(overuse)[0]
    window_around = slice(
        max(0, overuse_bins[0] - 20), min(len(t), overuse_bins[0] + 20)
    )
    assert (
        np.abs(slope[window_around]).max() * 4 * 60
        > threshold[window_around].min() * 0.01
    )  # the raw slope signal is live around the detection
