"""Video encoder adaptation: bitrate → resolution / frame-rate ladder.

WebRTC's encoder follows the rate the congestion controller provides:
when the pushback rate drops, the encoder first reduces frame rate, then
steps down the resolution ladder (Fig. 20 ④, Fig. 21 ⑤, Table 3).

The ladder thresholds approximate libwebrtc's simulcast/singlecast rate
allocations.  ``resolution_bias`` shifts the ladder down a rung — the
paper's DL streams (wired sender → cellular receiver) sit predominantly
at 360p while UL streams sit at 540p (Table 3, Appendix B); the bias
reproduces that operating-point asymmetry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np


@dataclass(frozen=True)
class LadderRung:
    """One rung of the resolution ladder."""

    resolution_p: int
    min_bps: float  # rate below which this rung is not sustainable
    good_bps: float  # rate at which this rung runs at full frame rate


#: Ascending ladder; thresholds follow common WebRTC rate allocations.
LADDER: List[LadderRung] = [
    LadderRung(180, 90_000.0, 250_000.0),
    LadderRung(360, 300_000.0, 700_000.0),
    LadderRung(540, 850_000.0, 1_600_000.0),
    LadderRung(720, 1_900_000.0, 3_000_000.0),
    LadderRung(1080, 3_600_000.0, 5_500_000.0),
]

#: Upgrade hysteresis: rate must exceed the next rung's good_bps by this
#: factor before stepping up (prevents resolution flapping).
UPGRADE_MARGIN = 1.10

MAX_FPS = 30.0
MIN_FPS = 10.0


@dataclass
class EncoderAdapter:
    """Tracks the current (resolution, fps) operating point.

    Args:
        resolution_bias: rungs subtracted from the rate-implied rung
            (>= 0).  0 for the cellular sender, 1 for the wired sender.
        max_resolution_p: operating ceiling.  The paper's calls run a
            pre-recorded virtual camera whose streams sit almost
            entirely at <= 540p (Table 3: 720p+ under 3% everywhere),
            so 540p is the default cap.
        keyframe_interval: every Nth frame is a keyframe (larger).
        seed: RNG seed for frame-size variation.
    """

    resolution_bias: int = 0
    max_resolution_p: int = 540
    keyframe_interval: int = 300
    seed: int = 0
    _rung_index: int = 1  # start at 360p like WebRTC's initial ramp
    _frame_counter: int = 0
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = np.random.default_rng(self.seed)
        self._max_index = max(
            i
            for i, rung in enumerate(LADDER)
            if rung.resolution_p <= self.max_resolution_p
        )

    def adapt(self, rate_bps: float) -> Tuple[int, float]:
        """Update the operating point for *rate_bps*.

        Returns (resolution_p, fps).
        """
        index = self._rung_index
        # Step down while the current rung is unsustainable.
        while index > 0 and rate_bps < LADDER[index].min_bps:
            index -= 1
        # Step up when there is comfortable headroom for the next rung.
        while (
            index < self._max_index
            and rate_bps > LADDER[index + 1].good_bps * UPGRADE_MARGIN
        ):
            index += 1
        index = min(index, self._max_index)
        index = max(0, index - self.resolution_bias)
        self._rung_index = min(index + self.resolution_bias, self._max_index)
        rung = LADDER[index]
        if rate_bps >= rung.good_bps:
            fps = MAX_FPS
        else:
            span = max(rung.good_bps - rung.min_bps, 1.0)
            fraction = (rate_bps - rung.min_bps) / span
            fps = MIN_FPS + (MAX_FPS - MIN_FPS) * max(0.0, min(1.0, fraction))
        return rung.resolution_p, fps

    @property
    def resolution_p(self) -> int:
        index = max(0, self._rung_index - self.resolution_bias)
        return LADDER[index].resolution_p

    def frame_bytes(self, rate_bps: float, fps: float) -> int:
        """Size of the next encoded frame at the given rate and fps.

        Keyframes are ~3x larger; delta frames vary ±25 % around the
        rate budget (content-dependent), as real encoders do.
        """
        if fps <= 0:
            return 0
        budget = rate_bps / 8.0 / fps
        self._frame_counter += 1
        if self._frame_counter % self.keyframe_interval == 1:
            size = budget * 3.0
        else:
            size = budget * float(self._rng.uniform(0.75, 1.25))
        return max(200, int(size))
