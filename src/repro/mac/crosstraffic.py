"""Cross-traffic demand models.

In a shared cell the PRBs granted to one UE depend on every other UE's
demand (§5.1.2).  The paper's commercial cells show heavy, bursty,
DL-dominated cross traffic (the T-Mobile 15 MHz FDD cell most of all);
the private cells are essentially idle.  We model each cross-traffic UE
as an on-off Markov-modulated process: exponentially distributed busy
periods during which the UE demands a random number of PRBs per slot,
separated by exponentially distributed idle gaps.

Scripted bursts can be injected for the Fig. 13 reproduction, where a
cross-traffic burst starts at a known time and squeezes the test UE.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np


@dataclass
class CrossTrafficUe:
    """One on-off cross-traffic UE.

    Attributes:
        rnti: MAC identifier reported in DCI telemetry.
        mean_on_ms: mean busy-period duration.
        mean_off_ms: mean idle-gap duration.
        mean_prb_demand: mean PRBs per slot demanded while busy.
        scripted_bursts: optional list of (start_us, duration_us,
            prb_demand) tuples that force the UE busy.
        seed: RNG seed.
    """

    rnti: int
    mean_on_ms: float = 200.0
    mean_off_ms: float = 800.0
    mean_prb_demand: float = 20.0
    scripted_bursts: List[Tuple[int, int, int]] = field(default_factory=list)
    seed: int = 0

    def __post_init__(self) -> None:
        self._rng = np.random.default_rng(self.seed)
        self._busy_until_us = 0
        self._idle_until_us = 0
        self._current_demand = 0
        # Start idle with a random phase so multiple UEs desynchronise.
        self._idle_until_us = int(
            self._rng.exponential(self.mean_off_ms) * 1000
        )

    def _scripted_demand(self, now_us: int) -> int:
        demand = 0
        for start, duration, prbs in self.scripted_bursts:
            if start <= now_us < start + duration:
                demand = max(demand, prbs)
        return demand

    def demand_at(self, now_us: int) -> int:
        """PRBs this UE wants in the slot containing *now_us*."""
        scripted = self._scripted_demand(now_us)
        if scripted > 0:
            return scripted
        if self.mean_on_ms <= 0 or self.mean_prb_demand <= 0:
            return 0
        if now_us < self._busy_until_us:
            return self._current_demand
        if now_us < self._idle_until_us:
            return 0
        # Transition: we were past both timers -> start a new busy period.
        on_duration = self._rng.exponential(self.mean_on_ms) * 1000
        off_duration = self._rng.exponential(self.mean_off_ms) * 1000
        self._busy_until_us = now_us + int(max(on_duration, 1000))
        self._idle_until_us = self._busy_until_us + int(max(off_duration, 1000))
        self._current_demand = int(
            max(1, self._rng.poisson(self.mean_prb_demand))
        )
        return self._current_demand


@dataclass
class CrossTrafficModel:
    """A population of cross-traffic UEs sharing a cell direction."""

    ues: List[CrossTrafficUe] = field(default_factory=list)

    @classmethod
    def idle(cls) -> "CrossTrafficModel":
        """A model with no cross traffic (private-cell default)."""
        return cls(ues=[])

    @classmethod
    def build(
        cls,
        n_ues: int,
        mean_on_ms: float,
        mean_off_ms: float,
        mean_prb_demand: float,
        seed: int,
        first_rnti: int = 40_000,
    ) -> "CrossTrafficModel":
        """Build *n_ues* independent on-off UEs with staggered seeds."""
        ues = [
            CrossTrafficUe(
                rnti=first_rnti + i,
                mean_on_ms=mean_on_ms,
                mean_off_ms=mean_off_ms,
                mean_prb_demand=mean_prb_demand,
                seed=seed * 1009 + i,
            )
            for i in range(n_ues)
        ]
        return cls(ues=ues)

    def demands_at(self, now_us: int) -> Sequence[Tuple[int, int]]:
        """Return ``(rnti, prb_demand)`` for every UE with demand > 0."""
        out = []
        for ue in self.ues:
            demand = ue.demand_at(now_us)
            if demand > 0:
                out.append((ue.rnti, demand))
        return out

    def total_demand_at(self, now_us: int) -> int:
        """Total PRBs demanded by all cross-traffic UEs at *now_us*."""
        return sum(d for _, d in self.demands_at(now_us))
