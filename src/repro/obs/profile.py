"""Continuous profiling: a zero-dependency sampling wall-clock profiler.

The ROADMAP's remaining perf item (chasing 1000×+ realtime) needs to
know *where* the time goes before optimizing it.  This module samples
call stacks at a fixed wall-clock interval and aggregates them into
collapsed-stack lines — the flamegraph interchange format
(``frame;frame;frame count``) consumed directly by ``flamegraph.pl``
and speedscope — with no third-party dependency and no tracing hooks
(``sys.setprofile`` would distort the hot paths it measures).

Two sampling engines, selected automatically:

* **signal** — ``setitimer(ITIMER_REAL)`` + ``SIGALRM``; the handler
  receives the interrupted frame for free.  Lowest overhead, but only
  the main thread of the main interpreter can install it.
* **thread** — a daemon sweeper thread snapshots every thread's stack
  via ``sys._current_frames()`` each interval.  Works anywhere
  (asyncio services, non-main threads) and sees all threads.

Frames are labelled ``module:function`` so collapsed output reads as
``repro.telemetry.timeline:from_bundle;...``.  Overhead at the default
5 ms interval is bounded by the CI gate (``tools/trace_smoke.py``) at
<5% on the 60 s analyze benchmark.
"""

from __future__ import annotations

import signal
import sys
import threading
import time
from typing import Dict, Iterable, List, Optional, Tuple

#: Deepest stack recorded per sample; frames below are dropped (the
#: root end is kept, matching what a flamegraph can usefully show).
MAX_DEPTH = 128


def _label(frame) -> str:
    """``module:function`` for one frame (cheap, allocation-light)."""
    return (
        f"{frame.f_globals.get('__name__', '?')}:"
        f"{frame.f_code.co_name}"
    )


def _walk(frame) -> Tuple[str, ...]:
    """The frame's stack as a root-first label tuple."""
    labels: List[str] = []
    while frame is not None and len(labels) < MAX_DEPTH:
        labels.append(_label(frame))
        frame = frame.f_back
    labels.reverse()
    return tuple(labels)


class SamplingProfiler:
    """Sample call stacks on a wall-clock interval; aggregate counts.

    Use as a context manager::

        with SamplingProfiler(interval_s=0.005) as prof:
            run_workload()
        open("out.collapsed", "w").write(prof.collapsed())

    *mode* is ``"signal"``, ``"thread"``, or ``"auto"`` (signal when
    running on the main thread, sweeper thread otherwise).  Samples
    accumulate in :attr:`samples` as ``{stack_tuple: count}``; a
    profiler can be started and stopped repeatedly and keeps
    accumulating.
    """

    def __init__(
        self, interval_s: float = 0.005, mode: str = "auto"
    ) -> None:
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        if mode not in ("auto", "signal", "thread"):
            raise ValueError(
                f"mode must be auto|signal|thread, got {mode!r}"
            )
        self.interval_s = float(interval_s)
        self.mode = mode
        self.samples: Dict[Tuple[str, ...], int] = {}
        self.n_samples = 0
        self.wall_s = 0.0
        self._engine: Optional[str] = None
        self._t0 = 0.0
        self._previous_handler = None
        self._sweeper: Optional[threading.Thread] = None
        self._stop_event = threading.Event()

    # -- engine selection --------------------------------------------------

    def _pick_engine(self) -> str:
        if self.mode != "auto":
            return self.mode
        on_main = (
            threading.current_thread() is threading.main_thread()
        )
        return "signal" if on_main and hasattr(signal, "setitimer") else (
            "thread"
        )

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "SamplingProfiler":
        if self._engine is not None:
            raise RuntimeError("profiler already running")
        engine = self._pick_engine()
        self._t0 = time.perf_counter()
        if engine == "signal":
            try:
                self._previous_handler = signal.signal(
                    signal.SIGALRM, self._on_signal
                )
                signal.setitimer(
                    signal.ITIMER_REAL, self.interval_s, self.interval_s
                )
            except (ValueError, OSError, AttributeError):
                # Not the main thread after all (or platform without
                # timers) — fall back to the sweeper.
                self._previous_handler = None
                engine = "thread"
        if engine == "thread":
            self._stop_event.clear()
            self._sweeper = threading.Thread(
                target=self._sweep, name="repro-profiler", daemon=True
            )
            self._sweeper.start()
        self._engine = engine
        return self

    def stop(self) -> "SamplingProfiler":
        if self._engine is None:
            return self
        self.wall_s += time.perf_counter() - self._t0
        if self._engine == "signal":
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            if self._previous_handler is not None:
                signal.signal(signal.SIGALRM, self._previous_handler)
            self._previous_handler = None
        else:
            self._stop_event.set()
            if self._sweeper is not None:
                self._sweeper.join(timeout=2.0)
            self._sweeper = None
        self._engine = None
        return self

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # -- sampling engines --------------------------------------------------

    def _record(self, stack: Tuple[str, ...]) -> None:
        if not stack:
            return
        self.samples[stack] = self.samples.get(stack, 0) + 1
        self.n_samples += 1

    def _on_signal(self, signum, frame) -> None:
        self._record(_walk(frame))

    def _sweep(self) -> None:
        own_id = threading.get_ident()
        while not self._stop_event.wait(self.interval_s):
            for thread_id, frame in sys._current_frames().items():
                if thread_id == own_id:
                    continue
                self._record(_walk(frame))

    # -- output ------------------------------------------------------------

    def collapsed(self) -> str:
        """Collapsed-stack text: one ``a;b;c count`` line per stack.

        Feed straight to ``flamegraph.pl`` or import into speedscope.
        Lines are sorted for deterministic output.
        """
        return "\n".join(
            f"{';'.join(stack)} {count}"
            for stack, count in sorted(self.samples.items())
        )

    def write(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            text = self.collapsed()
            handle.write(text + ("\n" if text else ""))

    def self_times(self) -> List[Tuple[str, int]]:
        """Per-frame *self* sample counts (leaf attribution), sorted
        descending — the flamegraph's widest tips."""
        leaves: Dict[str, int] = {}
        for stack, count in self.samples.items():
            leaf = stack[-1]
            leaves[leaf] = leaves.get(leaf, 0) + count
        return sorted(leaves.items(), key=lambda kv: (-kv[1], kv[0]))

    def top_fraction(self, k: int = 10) -> float:
        """Fraction of all samples owned by the top-*k* self frames."""
        if self.n_samples == 0:
            return 0.0
        top = self.self_times()[: max(0, int(k))]
        return sum(count for _, count in top) / float(self.n_samples)

    def attribute(
        self, markers: Dict[str, Iterable[str]]
    ) -> Dict[str, float]:
        """Fraction of samples per named phase.

        *markers* maps a phase name to frame-label substrings (e.g.
        ``{"ingest": ("timeline:from_bundle",)}``).  Each sample is
        attributed to the phase of the *innermost* matching frame;
        unmatched samples land in ``"other"``.  Fractions sum to 1.0
        when any samples exist.
        """
        counts: Dict[str, int] = {phase: 0 for phase in markers}
        counts["other"] = 0
        for stack, count in self.samples.items():
            matched = "other"
            for frame_label in reversed(stack):
                hit = next(
                    (
                        phase
                        for phase, subs in markers.items()
                        if any(sub in frame_label for sub in subs)
                    ),
                    None,
                )
                if hit is not None:
                    matched = hit
                    break
            counts[matched] += count
        total = float(self.n_samples) or 1.0
        return {phase: n / total for phase, n in counts.items()}


class profile_to_file:
    """``with profile_to_file(path):`` — the CLI ``--profile`` engine.

    A no-op when *path* is falsy, so command handlers can wrap their
    whole body unconditionally.  On exit the collapsed-stack output is
    written to *path* and a one-line summary is printed to stderr.
    """

    def __init__(
        self,
        path: Optional[str],
        *,
        interval_s: float = 0.005,
        mode: str = "auto",
        quiet: bool = False,
    ) -> None:
        self.path = path
        self.quiet = quiet
        self.profiler = (
            SamplingProfiler(interval_s=interval_s, mode=mode)
            if path
            else None
        )

    def __enter__(self) -> Optional[SamplingProfiler]:
        if self.profiler is not None:
            self.profiler.start()
        return self.profiler

    def __exit__(self, exc_type, exc, tb) -> None:
        if self.profiler is None:
            return
        self.profiler.stop()
        self.profiler.write(self.path)
        if not self.quiet:
            print(
                f"profile: {self.profiler.n_samples} samples over "
                f"{self.profiler.wall_s:.1f}s -> {self.path} "
                f"(collapsed-stack; render with flamegraph.pl or "
                f"speedscope)",
                file=sys.stderr,
            )


__all__ = [
    "MAX_DEPTH",
    "SamplingProfiler",
    "profile_to_file",
]
