"""Process-local metrics: counters, gauges, fixed-bucket histograms.

The registry is deliberately tiny and dependency-free so it can stay
always-on: a counter increment is a dict lookup plus a float add, and a
histogram observation is a linear scan over a handful of bucket bounds.
Nothing here allocates on the hot path after the first touch of a given
(metric, labels) pair.

Metrics are process-local by design.  Fleet campaigns that fan out over
a :class:`~concurrent.futures.ProcessPoolExecutor` or a cluster of
workers aggregate at the point where outcomes return to the parent (see
``repro.api.facade.campaign``), not by merging child registries — the
paper pipeline only needs campaign-level totals, and that keeps the
metrics layer free of IPC.

Exposition is Prometheus text format (``render_prom``), chosen because
it is trivially greppable, diffable in CI, and scrapeable if the file is
ever served.  ``parse_prom`` is the matching reader used by the CI obs
smoke test and by anything that wants to assert on a snapshot without a
Prometheus client library.
"""

from __future__ import annotations

import math
import os
import threading
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

#: Default histogram bucket upper bounds, in the metric's native unit.
#: Tuned for seconds-scale span durations: sub-millisecond ingest slices
#: through multi-second campaign phases.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
    10.0,
    60.0,
)

LabelItems = Tuple[Tuple[str, str], ...]


def _label_key(labels: Mapping[str, str]) -> LabelItems:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_labels(items: LabelItems, extra: str = "") -> str:
    parts = [f'{k}="{_escape_label(v)}"' for k, v in items]
    if extra:
        parts.append(extra)
    if not parts:
        return ""
    return "{" + ",".join(parts) + "}"


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class Counter:
    """Monotonically increasing counter, optionally labelled."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._values: Dict[LabelItems, float] = {}
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if amount < 0:
            raise ValueError(
                f"counter {self.name!r} cannot decrease (amount={amount})"
            )
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def total(self) -> float:
        """Sum across all label sets."""
        return sum(self._values.values())

    def samples(self) -> List[Tuple[str, str, float]]:
        out = []
        for items in sorted(self._values):
            out.append(
                (self.name, _render_labels(items), self._values[items])
            )
        return out


class Gauge:
    """Point-in-time value that can move both ways."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._values: Dict[LabelItems, float] = {}
        self._lock = threading.Lock()

    def set(self, value: float, **labels: str) -> None:
        with self._lock:
            self._values[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: str) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: str) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def samples(self) -> List[Tuple[str, str, float]]:
        out = []
        for items in sorted(self._values):
            out.append(
                (self.name, _render_labels(items), self._values[items])
            )
        return out


class Histogram:
    """Fixed-bucket histogram with cumulative Prometheus semantics.

    Bucket bounds are fixed at construction; each observation does one
    linear scan (the bound count is small) and two float adds.  Quantile
    estimates interpolate within the containing bucket, which is the
    same approximation ``histogram_quantile`` makes server-side.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        if not buckets:
            raise ValueError(f"histogram {name!r} needs >=1 bucket")
        bounds = tuple(float(b) for b in buckets)
        if list(bounds) != sorted(bounds):
            raise ValueError(
                f"histogram {name!r} bucket bounds must be sorted: {bounds}"
            )
        self.name = name
        self.help = help
        self.bounds = bounds
        self._lock = threading.Lock()
        # per label set: (bucket counts incl. +Inf, sum, count)
        self._series: Dict[LabelItems, List[float]] = {}
        self._sums: Dict[LabelItems, float] = {}
        self._counts: Dict[LabelItems, float] = {}

    def observe(self, value: float, **labels: str) -> None:
        value = float(value)
        key = _label_key(labels)
        with self._lock:
            counts = self._series.get(key)
            if counts is None:
                counts = [0.0] * (len(self.bounds) + 1)
                self._series[key] = counts
            for i, bound in enumerate(self.bounds):
                if value <= bound:
                    counts[i] += 1
                    break
            else:
                counts[len(self.bounds)] += 1
            self._sums[key] = self._sums.get(key, 0.0) + value
            self._counts[key] = self._counts.get(key, 0.0) + 1

    def count(self, **labels: str) -> float:
        return self._counts.get(_label_key(labels), 0.0)

    def sum(self, **labels: str) -> float:
        return self._sums.get(_label_key(labels), 0.0)

    def quantile(self, q: float, **labels: str) -> float:
        """Estimate the q-quantile (0..1) by bucket interpolation."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        key = _label_key(labels)
        counts = self._series.get(key)
        total = self._counts.get(key, 0.0)
        if not counts or total == 0:
            return float("nan")
        target = q * total
        cumulative = 0.0
        lower = 0.0
        for i, bound in enumerate(self.bounds):
            previous = cumulative
            cumulative += counts[i]
            if cumulative >= target:
                if counts[i] == 0:
                    return bound
                frac = (target - previous) / counts[i]
                return lower + frac * (bound - lower)
            lower = bound
        # Overflow bucket: the best point estimate we have is its floor.
        return self.bounds[-1]

    def samples(self) -> List[Tuple[str, str, float]]:
        out = []
        for items in sorted(self._series):
            counts = self._series[items]
            cumulative = 0.0
            for i, bound in enumerate(self.bounds):
                cumulative += counts[i]
                out.append(
                    (
                        f"{self.name}_bucket",
                        _render_labels(
                            items, f'le="{_format_value(bound)}"'
                        ),
                        cumulative,
                    )
                )
            cumulative += counts[len(self.bounds)]
            out.append(
                (
                    f"{self.name}_bucket",
                    _render_labels(items, 'le="+Inf"'),
                    cumulative,
                )
            )
            out.append(
                (
                    f"{self.name}_sum",
                    _render_labels(items),
                    self._sums[items],
                )
            )
            out.append(
                (
                    f"{self.name}_count",
                    _render_labels(items),
                    self._counts[items],
                )
            )
        return out


class MetricsRegistry:
    """Named home for every metric a process exports.

    ``counter``/``gauge``/``histogram`` are get-or-create: repeated
    calls with the same name return the same instance, so call sites
    can fetch by name without threading instances around.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, name: str, kind: str, factory):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if existing.kind != kind:  # type: ignore[attr-defined]
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, requested {kind}"  # type: ignore[attr-defined]
                    )
                return existing
            metric = factory()
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(
            name, "counter", lambda: Counter(name, help)
        )

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(name, "gauge", lambda: Gauge(name, help))

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            name, "histogram", lambda: Histogram(name, help, buckets)
        )

    def get(self, name: str) -> Optional[object]:
        return self._metrics.get(name)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def reset(self) -> None:
        """Drop every metric.  Tests and benchmarks only."""
        with self._lock:
            self._metrics.clear()

    def render_prom(self) -> str:
        """Render the registry in Prometheus text exposition format."""
        lines: List[str] = []
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if metric.help:  # type: ignore[attr-defined]
                lines.append(f"# HELP {name} {metric.help}")  # type: ignore[attr-defined]
            lines.append(f"# TYPE {name} {metric.kind}")  # type: ignore[attr-defined]
            for sample_name, labels, value in metric.samples():  # type: ignore[attr-defined]
                lines.append(
                    f"{sample_name}{labels} {_format_value(value)}"
                )
        return "\n".join(lines) + ("\n" if lines else "")


def _unescape_label(value: str, line: str) -> str:
    """Inverse of :func:`_escape_label` (``\\\\``, ``\\"``, ``\\n``)."""
    out: List[str] = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch != "\\":
            out.append(ch)
            i += 1
            continue
        if i + 1 >= len(value):
            raise ValueError(f"dangling escape in prom line: {line!r}")
        nxt = value[i + 1]
        if nxt == "\\":
            out.append("\\")
        elif nxt == '"':
            out.append('"')
        elif nxt == "n":
            out.append("\n")
        else:
            # Unknown escape: Prometheus keeps the backslash literally.
            out.append("\\")
            out.append(nxt)
        i += 2
    return "".join(out)


def _parse_value(text: str, line: str) -> float:
    text = text.strip()
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    try:
        return float(text)
    except ValueError:
        raise ValueError(f"unparseable prom value in line: {line!r}")


def parse_prom_samples(
    text: str,
) -> List[Tuple[str, Dict[str, str], float]]:
    """Parse Prometheus text format into ``(name, labels, value)`` rows.

    The true inverse of :meth:`MetricsRegistry.render_prom`: label
    values are tokenized against their quotes (a value may contain
    ``{``, ``}``, ``,``, ``=``, or spaces) and unescaped (``\\\\`` →
    ``\\``, ``\\"`` → ``"``, ``\\n`` → newline), so rendering the
    returned labels back through the escaper reproduces the input line
    byte-for-byte.  Histogram ``le`` labels ride through like any
    other, which keeps the ``+Inf`` bucket intact across a round trip.
    """
    samples: List[Tuple[str, Dict[str, str], float]] = []
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        brace = line.find("{")
        if brace < 0:
            name_part, _, value_part = line.rpartition(" ")
            if not name_part:
                raise ValueError(f"unparseable prom line: {raw!r}")
            samples.append(
                (name_part.strip(), {}, _parse_value(value_part, raw))
            )
            continue
        name = line[:brace].strip()
        if not name:
            raise ValueError(f"unparseable prom line: {raw!r}")
        labels: Dict[str, str] = {}
        i = brace + 1
        while True:
            while i < len(line) and line[i] in ", ":
                i += 1
            if i < len(line) and line[i] == "}":
                i += 1
                break
            eq = line.find("=", i)
            if eq < 0 or eq + 1 >= len(line) or line[eq + 1] != '"':
                raise ValueError(f"unparseable prom labels: {raw!r}")
            key = line[i:eq].strip()
            # Scan the quoted value respecting backslash escapes: a
            # label value may contain every structural character.
            j = eq + 2
            while j < len(line):
                if line[j] == "\\":
                    j += 2
                    continue
                if line[j] == '"':
                    break
                j += 1
            if j >= len(line):
                raise ValueError(f"unterminated label value: {raw!r}")
            labels[key] = _unescape_label(line[eq + 2 : j], raw)
            i = j + 1
        samples.append((name, labels, _parse_value(line[i:], raw)))
    return samples


def sample_key(name: str, labels: Mapping[str, str]) -> str:
    """Canonical ``name{labels}`` key for one parsed sample.

    Re-escapes through the same :func:`_escape_label` path
    ``render_prom`` uses, so the key of a parsed sample equals the text
    the registry rendered — even for label values containing ``\\`` or
    ``"`` — and rendering, parsing, and re-keying is a fixed point.
    """
    items = tuple((str(k), str(v)) for k, v in labels.items())
    return f"{name}{_render_labels(items)}"


def parse_prom(text: str) -> Dict[str, float]:
    """Parse Prometheus text format into ``{sample_with_labels: value}``.

    Inverse of :meth:`MetricsRegistry.render_prom` for assertion
    purposes; keys are the canonical rendered form, e.g.
    ``repro_span_seconds_count{span="detect.features"}``.  Built on
    :func:`parse_prom_samples`, so label values containing ``\\`` and
    ``"`` round-trip exactly and the ``+Inf`` histogram bucket survives
    the inverse.
    """
    return {
        sample_key(name, labels): value
        for name, labels, value in parse_prom_samples(text)
    }


def write_metrics_file(
    registry: MetricsRegistry, path: str
) -> None:
    """Atomically write the registry snapshot to ``path``.

    Write-then-rename so a concurrent reader (or a crash mid-flush)
    never observes a torn snapshot.
    """
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(registry.render_prom())
    os.replace(tmp, path)


_GLOBAL_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry used by ``repro`` internals."""
    return _GLOBAL_REGISTRY


__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "parse_prom",
    "parse_prom_samples",
    "sample_key",
    "write_metrics_file",
]
