"""Radio Link Control (RLC) layer models.

The RLC acknowledged mode recovers data that HARQ gave up on and enforces
in-order delivery to higher layers, which creates head-of-line blocking
when a retransmission is pending (§5.2.3, Fig. 15c, Fig. 18).  The send
side is a byte-stream buffer (:mod:`repro.rlc.buffer`); the receive side
is a reassembly entity (:mod:`repro.rlc.am`).
"""

from repro.rlc.am import DeliveredPacket, ReassemblyEntity, RlcRetxEvent
from repro.rlc.buffer import BufferedPacket, RlcSendBuffer, Segment

__all__ = [
    "DeliveredPacket",
    "ReassemblyEntity",
    "RlcRetxEvent",
    "BufferedPacket",
    "RlcSendBuffer",
    "Segment",
]
