"""Downlink/uplink PRB scheduler with cross-traffic contention.

The scheduler divides the cell's PRBs between the experiment UE (the
WebRTC client) and cross-traffic UEs each slot.  Two behaviours from the
paper are modeled explicitly:

* **Cross-traffic squeeze** (§5.1.2, Fig. 13): when other UEs demand many
  PRBs, the experiment UE is pushed toward its fair share, shrinking its
  TBS and creating a positive rate gap.
* **Poor-channel de-prioritisation** (§5.1.1, Fig. 12): "the base
  station's scheduler assigns fewer PRBs to a UE with poor channel
  conditions to improve transmission reliability and resource
  efficiency" — we cap the PRB share of a UE whose MCS falls below a
  threshold.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.phy.mcs import DATA_RE_PER_PRB, mcs_table


@dataclass
class Allocation:
    """Result of one slot's scheduling decision for the experiment UE."""

    exp_prbs: int
    cross_allocations: List[Tuple[int, int]]  # (rnti, prbs)

    @property
    def cross_prbs(self) -> int:
        return sum(p for _, p in self.cross_allocations)


def prbs_needed(payload_bytes: int, mcs: int) -> int:
    """PRBs needed to carry *payload_bytes* at MCS *mcs* in one slot."""
    if payload_bytes <= 0:
        return 0
    efficiency = mcs_table()[mcs].spectral_efficiency
    bits_per_prb = DATA_RE_PER_PRB * efficiency
    return max(1, math.ceil(payload_bytes * 8 / bits_per_prb))


@dataclass
class DlScheduler:
    """Per-slot PRB allocator shared by both directions.

    Args:
        total_prbs: PRBs available per slot in this direction.
        max_exp_fraction: hard cap on the experiment UE's share.
        poor_channel_mcs_threshold: below this MCS the UE is considered to
            be in poor channel conditions and its PRB share is capped.
        poor_channel_prb_fraction: the cap applied in that case.
    """

    total_prbs: int
    max_exp_fraction: float = 1.0
    poor_channel_mcs_threshold: int = 6
    poor_channel_prb_fraction: float = 0.5

    def allocate(
        self,
        exp_demand_prbs: int,
        exp_mcs: int,
        cross_demands: Sequence[Tuple[int, int]],
    ) -> Allocation:
        """Allocate PRBs for one slot.

        The experiment UE receives what it asks for when the cell is
        uncongested.  Under contention, PRBs are split proportionally to
        demand — how a loaded proportional-fair scheduler behaves when
        greedy full-buffer flows share the cell, and what produces the
        PRB starvation the paper's Fig. 13 shows.  Poor-channel UEs are
        additionally capped (Fig. 12's reliability de-prioritisation).
        """
        exp_cap = int(self.total_prbs * self.max_exp_fraction)
        if exp_mcs < self.poor_channel_mcs_threshold:
            exp_cap = min(
                exp_cap, int(self.total_prbs * self.poor_channel_prb_fraction)
            )
        exp_want = min(exp_demand_prbs, exp_cap)

        cross_total = sum(d for _, d in cross_demands)
        if exp_want + cross_total <= self.total_prbs:
            # No contention: everyone gets their demand.
            return Allocation(
                exp_prbs=exp_want,
                cross_allocations=[(r, d) for r, d in cross_demands],
            )

        # Contention: demand-proportional shares (min 1 PRB if wanted).
        total_demand = exp_want + cross_total
        exp_prbs = int(round(self.total_prbs * exp_want / total_demand))
        exp_prbs = min(exp_want, max(1 if exp_want > 0 else 0, exp_prbs))
        remaining = self.total_prbs - exp_prbs

        cross_allocations: List[Tuple[int, int]] = []
        if cross_total > 0 and remaining > 0:
            # Distribute the remainder proportionally to demand.
            scale = min(1.0, remaining / cross_total)
            used = 0
            for rnti, demand in cross_demands:
                prbs = min(int(demand * scale), remaining - used)
                if prbs > 0:
                    cross_allocations.append((rnti, prbs))
                    used += prbs
        return Allocation(exp_prbs=exp_prbs, cross_allocations=cross_allocations)
