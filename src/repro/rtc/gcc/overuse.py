"""Overuse detector with adaptive threshold.

Compares the (modified) trendline slope against an adaptive threshold to
classify the network as *overuse* (queue building), *underuse* (queue
draining), or *normal* (§6.2, Fig. 21 subplots 2–3).  The threshold
itself adapts toward the observed trend magnitude so that repetitive,
self-inflicted delay patterns do not trigger endless overuse — the
asymmetric gain constants are libwebrtc's.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class BandwidthUsage(enum.Enum):
    """Detector output state."""

    UNDERUSE = "underuse"
    NORMAL = "normal"
    OVERUSE = "overuse"


@dataclass
class OveruseDetector:
    """Adaptive-threshold hypothesis test on the trendline slope.

    Attributes:
        threshold: current adaptive threshold (initial 12.5, the
            libwebrtc default).
        k_up / k_down: threshold adaptation gains when the trend is
            above / below the threshold.
        overuse_time_threshold_ms: overuse must persist this long before
            it is signalled.
    """

    threshold: float = 12.5
    k_up: float = 0.0087
    k_down: float = 0.039
    overuse_time_threshold_ms: float = 10.0
    min_threshold: float = 6.0
    max_threshold: float = 600.0

    state: BandwidthUsage = BandwidthUsage.NORMAL
    _time_over_using_ms: float = -1.0
    _overuse_counter: int = 0
    _prev_trend: float = 0.0
    _last_update_us: int = -1

    def detect(self, modified_trend: float, now_us: int) -> BandwidthUsage:
        """Classify the network state given the current modified trend."""
        delta_ms = 0.0
        if self._last_update_us >= 0:
            delta_ms = (now_us - self._last_update_us) / 1000.0

        if modified_trend > self.threshold:
            if self._time_over_using_ms < 0:
                self._time_over_using_ms = delta_ms / 2.0
            else:
                self._time_over_using_ms += delta_ms
            self._overuse_counter += 1
            if (
                self._time_over_using_ms > self.overuse_time_threshold_ms
                and self._overuse_counter > 1
                and modified_trend >= self._prev_trend
            ):
                self._time_over_using_ms = 0.0
                self._overuse_counter = 0
                self.state = BandwidthUsage.OVERUSE
        elif modified_trend < -self.threshold:
            self._time_over_using_ms = -1.0
            self._overuse_counter = 0
            self.state = BandwidthUsage.UNDERUSE
        else:
            self._time_over_using_ms = -1.0
            self._overuse_counter = 0
            self.state = BandwidthUsage.NORMAL

        self._prev_trend = modified_trend
        self._update_threshold(modified_trend, delta_ms)
        self._last_update_us = now_us
        return self.state

    def _update_threshold(self, modified_trend: float, delta_ms: float) -> None:
        magnitude = abs(modified_trend)
        # Ignore extreme outliers (e.g. a route change) per libwebrtc.
        if magnitude > self.threshold + 15.0:
            return
        k = self.k_down if magnitude < self.threshold else self.k_up
        delta_ms = min(delta_ms, 100.0)
        self.threshold += k * (magnitude - self.threshold) * delta_ms
        self.threshold = min(
            max(self.threshold, self.min_threshold), self.max_threshold
        )
