"""Sliding-window feature extraction: the 36-dimension vector of §4.2.

For every window position Domino evaluates the 20 event conditions of
Table 5 over the local and remote clients and both link directions,
producing a boolean feature vector:

* 10 application events × {local, remote}               = 20
* 6 bidirectional 5G events × {UL, DL}                  = 12
* forward/reverse packet delay, UL scheduling, RRC      =  4
                                                    total 36

Window length W = 5 s and step Δt = 0.5 s are the paper's defaults; both
are configurable (and swept by the ablation benchmarks).

Two engines produce the same feature windows:

* :class:`FeatureExtractor` — the per-window reference: slice every
  series per window position, call each detector on the slice.  Simple,
  and the semantic oracle the batch engine is tested against.
* :class:`BatchFeatureExtractor` — the production path: builds one
  strided ``(n_windows, W)`` view per series and evaluates each
  detector's vectorized counterpart over *all* windows in one numpy
  pass.  With the paper's 90 % window overlap this removes the ~10×
  re-slicing of every bin and the per-window Python dispatch.  Custom
  ``extra_detectors`` (arbitrary callables) fall back to per-window
  evaluation and are merged into the batch matrix.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Tuple

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.core.events import (
    EventConfig,
    build_batch_registry,
    build_registry,
)
from repro.telemetry.timeline import Timeline

#: Canonical feature ordering (36 names).
FEATURE_NAMES: Tuple[str, ...] = tuple(
    [
        f"{role}_{event}"
        for role in ("local", "remote")
        for event in (
            "inbound_framerate_down",
            "outbound_framerate_down",
            "outbound_resolution_down",
            "jitter_buffer_drain",
            "target_bitrate_down",
            "gcc_overuse",
            "pushback_rate_down",
            "cwnd_full",
            "outstanding_bytes_up",
            "pushback_neq_target",
        )
    ]
    + [
        f"{direction}_{event}"
        for direction in ("ul", "dl")
        for event in (
            "tbs_down",
            "rate_gap",
            "cross_traffic",
            "channel_degrades",
            "harq_retx",
            "rlc_retx",
        )
    ]
    + ["ul_delay_up", "dl_delay_up", "ul_scheduling", "rrc_change"]
)

assert len(FEATURE_NAMES) == 36, "the paper's vector has 36 dimensions"


def _window_step_bins(
    window_us: int, step_us: int, timeline: Timeline
) -> Tuple[int, int]:
    """(window length, step) in timeline bins — shared by both engines."""
    window_bins = max(1, window_us // timeline.dt_us)
    step_bins = max(1, step_us // timeline.dt_us)
    return window_bins, step_bins


def _check_no_shadowing(extra_detectors: Dict[str, object]) -> None:
    """Custom detectors may not take over built-in feature names."""
    overlap = set(extra_detectors) & set(FEATURE_NAMES)
    if overlap:
        raise ValueError(
            f"custom detectors shadow built-in features: {sorted(overlap)}"
        )


def _all_feature_names(extra_detectors: Dict[str, object]) -> Tuple[str, ...]:
    """Built-in 36 features plus custom ones, in canonical order."""
    return FEATURE_NAMES + tuple(sorted(extra_detectors))


@dataclass
class FeatureWindow:
    """One window's feature vector with its position in time."""

    start_us: int
    end_us: int
    features: Dict[str, bool]

    def true_features(self) -> List[str]:
        return [name for name, value in self.features.items() if value]

    def as_tuple(self) -> Tuple[bool, ...]:
        return tuple(self.features[name] for name in FEATURE_NAMES)


@dataclass
class FeatureExtractor:
    """Evaluates all 36 detectors over sliding windows of a timeline.

    Args:
        window_us: window length W (paper: 5 s).
        step_us: window step Δt (paper: 0.5 s).
        config: event-condition thresholds.
        extra_detectors: user-registered event detectors beyond Table 5
            (name → callable(window, config) → bool); the extensibility
            hook §4.2 describes ("readily incorporate other data
            features").
    """

    window_us: int = 5_000_000
    step_us: int = 500_000
    config: EventConfig = field(default_factory=EventConfig)
    extra_detectors: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._registry = build_registry()
        missing = set(FEATURE_NAMES) - set(self._registry)
        if missing:
            raise RuntimeError(f"detectors missing for features: {missing}")
        _check_no_shadowing(self.extra_detectors)
        self._registry.update(self.extra_detectors)  # type: ignore[arg-type]

    @property
    def feature_names(self) -> Tuple[str, ...]:
        """Built-in 36 features plus any registered custom ones."""
        return _all_feature_names(self.extra_detectors)

    def window_bins(self, timeline: Timeline) -> Tuple[int, int]:
        """(window length, step) in timeline bins."""
        return _window_step_bins(self.window_us, self.step_us, timeline)

    def extract(self, timeline: Timeline) -> Iterator[FeatureWindow]:
        """Yield feature vectors for every window position."""
        window_bins, step_bins = self.window_bins(timeline)
        names = self.feature_names
        start = 0
        while start + window_bins <= timeline.n_bins:
            view = timeline.window(start, window_bins)
            features = {
                name: bool(self._registry[name](view, self.config))
                for name in names
            }
            yield FeatureWindow(
                start_us=start * timeline.dt_us,
                end_us=(start + window_bins) * timeline.dt_us,
                features=features,
            )
            start += step_bins

    def extract_all(self, timeline: Timeline) -> List[FeatureWindow]:
        """Materialise :meth:`extract` into a list."""
        return list(self.extract(timeline))


class _WindowSlice(Mapping):
    """Lazy per-window view for custom-detector fallback.

    Presents the same mapping interface as :meth:`Timeline.window` but
    slices a series only when the detector actually reads it, so the
    batch engine does not pay the full ~60-series dict re-slicing per
    window just to honour one or two custom detectors.
    """

    __slots__ = ("_series", "_start", "_stop")

    def __init__(self, series: Dict[str, np.ndarray], start: int, stop: int):
        self._series = series
        self._start = start
        self._stop = stop

    def __getitem__(self, name: str) -> np.ndarray:
        return self._series[name][self._start : self._stop]

    def __iter__(self):
        return iter(self._series)

    def __len__(self) -> int:
        return len(self._series)

    def __contains__(self, name: str) -> bool:
        return name in self._series


@dataclass
class BatchFeatureExtractor:
    """Vectorized feature extraction: all windows in one numpy pass.

    Drop-in replacement for :class:`FeatureExtractor` — identical
    constructor arguments, identical :meth:`extract_all` output (same
    window positions, same feature dicts, bit-identical booleans) — but
    the 36 built-in detectors run over ``(n_windows, W)`` strided
    matrices instead of per-window slices.

    Custom ``extra_detectors`` keep the reference calling convention
    (``callable(window_series, config) → bool`` over one window) and are
    evaluated per window, then merged into the batch matrix, so the
    §4.2 extension hook is unchanged.
    """

    window_us: int = 5_000_000
    step_us: int = 500_000
    config: EventConfig = field(default_factory=EventConfig)
    extra_detectors: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._batch_registry = build_batch_registry()
        missing = set(FEATURE_NAMES) - set(self._batch_registry)
        if missing:
            raise RuntimeError(f"batch detectors missing: {missing}")
        _check_no_shadowing(self.extra_detectors)

    @property
    def feature_names(self) -> Tuple[str, ...]:
        """Built-in 36 features plus any registered custom ones."""
        return _all_feature_names(self.extra_detectors)

    def window_bins(self, timeline: Timeline) -> Tuple[int, int]:
        """(window length, step) in timeline bins."""
        return _window_step_bins(self.window_us, self.step_us, timeline)

    def feature_matrix(
        self, timeline: Timeline
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(window start bins, boolean matrix of shape n_windows × features).

        Columns follow :attr:`feature_names`.  Zero windows → empty
        arrays.
        """
        window_bins, step_bins = self.window_bins(timeline)
        names = self.feature_names
        if timeline.n_bins < window_bins:
            return (
                np.empty(0, dtype=np.int64),
                np.empty((0, len(names)), dtype=bool),
            )
        starts = np.arange(
            0, timeline.n_bins - window_bins + 1, step_bins, dtype=np.int64
        )
        windows = {
            name: sliding_window_view(values, window_bins)[::step_bins]
            for name, values in timeline.series.items()
        }
        matrix = np.empty((len(starts), len(names)), dtype=bool)
        for column, name in enumerate(FEATURE_NAMES):
            matrix[:, column] = self._batch_registry[name](
                windows, self.config
            )
        for offset, name in enumerate(sorted(self.extra_detectors)):
            detector = self.extra_detectors[name]
            column = len(FEATURE_NAMES) + offset
            for row, start in enumerate(starts):
                view = _WindowSlice(
                    timeline.series, int(start), int(start) + window_bins
                )
                matrix[row, column] = bool(detector(view, self.config))
        return starts, matrix

    def extract_all(self, timeline: Timeline) -> List[FeatureWindow]:
        """All windows' feature vectors, identical to the reference's."""
        window_bins, _ = self.window_bins(timeline)
        names = self.feature_names
        starts, matrix = self.feature_matrix(timeline)
        out: List[FeatureWindow] = []
        for row, start in enumerate(starts):
            values = matrix[row]
            out.append(
                FeatureWindow(
                    start_us=int(start) * timeline.dt_us,
                    end_us=(int(start) + window_bins) * timeline.dt_us,
                    features={
                        name: bool(values[column])
                        for column, name in enumerate(names)
                    },
                )
            )
        return out

    def extract(self, timeline: Timeline) -> Iterator[FeatureWindow]:
        """Iterator facade over :meth:`extract_all`."""
        return iter(self.extract_all(timeline))
