"""Bidirectional slot-stepped 5G bearer simulator.

The simulator advances in slots (0.5 ms or 1 ms depending on numerology).
Each direction (uplink = UE→gNB, downlink = gNB→UE) runs the pipeline:

    app packet → RLC send buffer → [BSR/grant loop, UL only]
      → PRB scheduling vs cross traffic → transport block (MCS/TBS)
      → HARQ attempts (ReTX ≈ +10 ms each)
      → on HARQ exhaustion: RLC retransmission (≈ +100 ms, HoL blocking)
      → in-order RLC delivery → packet out

RRC transitions (T-Mobile FDD behaviour, §5.3) freeze both directions for
``rrc_outage_us`` while the application keeps queueing data, producing
the 400 ms delay spikes of Fig. 19.

All the causal mechanics of the paper's §5 emerge from this pipeline:
rate gaps grow RLC queues (Fig. 12), cross traffic squeezes PRBs
(Fig. 13), grant-loop latency delays bursts (Figs. 14–16), HARQ and RLC
retransmissions inflate individual packet delays (Figs. 17–18).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.mac.crosstraffic import CrossTrafficModel
from repro.mac.harq import HarqEntity, HarqOutcome, TransportBlock
from repro.mac.scheduler import DlScheduler, prbs_needed
from repro.mac.ulgrant import UlGrantLoop
from repro.phy.cell import CellConfig
from repro.phy.channel import ChannelModel, ChannelSample
from repro.phy.mcs import bler, transport_block_size_bits
from repro.rlc.am import ReassemblyEntity
from repro.rlc.buffer import RlcSendBuffer
from repro.rrc.state import RrcManager
from repro.telemetry.collect import TelemetryCollector
from repro.telemetry.records import DciRecord, GnbLogKind, GnbLogRecord


@dataclass(frozen=True)
class RanDelivery:
    """A packet that completed its traversal of the cellular bearer."""

    packet_id: int
    delivered_us: int
    is_uplink: bool
    hol_blocked: bool = False


@dataclass(frozen=True)
class TbPacketMap:
    """Mapping of one transport block to the packets it carried (Fig. 14)."""

    tb_id: int
    ts_us: int
    is_uplink: bool
    packet_ids: Tuple[int, ...]
    tbs_bits: int
    proactive: bool = False


class _Direction:
    """State for one direction of the bearer."""

    def __init__(
        self,
        is_uplink: bool,
        channel: ChannelModel,
        cross: CrossTrafficModel,
        harq: HarqEntity,
        scheduler: DlScheduler,
        grant_loop: Optional[UlGrantLoop],
    ) -> None:
        self.is_uplink = is_uplink
        self.channel = channel
        self.cross = cross
        self.harq = harq
        self.scheduler = scheduler
        self.grant_loop = grant_loop
        self.buffer = RlcSendBuffer()
        self.reassembly = ReassemblyEntity()
        # RLC recoveries scheduled after HARQ exhaustion:
        # (recover_us, start_offset, end_offset)
        self.rlc_recoveries: List[Tuple[int, int, int]] = []
        self.rlc_retx_count = 0
        # Cache of the channel sample for the current slot.
        self._sample_slot = -1
        self._sample: Optional[ChannelSample] = None
        # Stale sample used for MCS selection (link adaptation lag).
        self._selection_sample: Optional[ChannelSample] = None

    def sample_at(self, slot: int, ts_us: int) -> ChannelSample:
        """Channel sample for *slot*, cached so one slot sees one state."""
        if self._sample_slot != slot:
            self._selection_sample = self._sample
            self._sample = self.channel.sample(ts_us)
            self._sample_slot = slot
        return self._sample

    def selection_mcs(self, slot: int, ts_us: int) -> int:
        """MCS used for scheduling: based on the previous slot's estimate.

        Link adaptation always lags the channel; during a sharp fade the
        stale estimate overshoots and BLER rises — the paper's 'aggressive
        MCS selection' effect (§5.2.2).
        """
        current = self.sample_at(slot, ts_us)
        if self._selection_sample is None:
            return current.mcs
        return self._selection_sample.mcs


class RanSimulator:
    """One cell carrying one experiment UE plus cross traffic.

    Args:
        cell: static cell configuration.
        ul_channel / dl_channel: per-direction channel models.
        ul_cross / dl_cross: cross-traffic populations per direction.
        collector: telemetry sink (optional).
        seed: RNG seed for HARQ coin flips and RRC timing.
        keep_tb_map: record TB→packet mappings (Fig. 14 reproduction).
    """

    #: Nominal MCS used for cross-traffic DCI records.
    CROSS_TRAFFIC_MCS = 18

    def __init__(
        self,
        cell: CellConfig,
        ul_channel: Optional[ChannelModel] = None,
        dl_channel: Optional[ChannelModel] = None,
        ul_cross: Optional[CrossTrafficModel] = None,
        dl_cross: Optional[CrossTrafficModel] = None,
        collector: Optional[TelemetryCollector] = None,
        seed: int = 0,
        keep_tb_map: bool = False,
        scripted_rrc_releases_us: Optional[List[int]] = None,
    ) -> None:
        self.cell = cell
        self.grid = cell.make_grid()
        self.collector = collector
        self.keep_tb_map = keep_tb_map
        self.tb_map: List[TbPacketMap] = []
        self.rrc = RrcManager(
            flap_rate_per_min=cell.rrc_flap_rate_per_min,
            outage_us=cell.rrc_outage_us,
            scripted_releases_us=list(scripted_rrc_releases_us or []),
            seed=seed + 7,
        )
        self._next_tb_id = 0
        self._current_slot = 0
        self._deliveries: List[RanDelivery] = []
        self._packet_sizes: Dict[int, int] = {}
        self._seen_rrc_transitions = 0
        self._buffer_log_period_slots = max(
            1, 10_000 // self.grid.slot_us
        )  # every 10 ms

        scheduler = DlScheduler(
            total_prbs=self.grid.n_prb,
            max_exp_fraction=cell.max_prb_per_ue_fraction,
        )
        self.ul = _Direction(
            is_uplink=True,
            channel=ul_channel or ChannelModel(seed=seed + 11),
            cross=ul_cross or CrossTrafficModel.idle(),
            harq=HarqEntity(
                rtt_slots=cell.harq_rtt_slots,
                max_retx=cell.harq_max_retx,
                seed=seed + 13,
            ),
            scheduler=scheduler,
            grant_loop=UlGrantLoop(cell=cell, grid=self.grid),
        )
        self.dl = _Direction(
            is_uplink=False,
            channel=dl_channel or ChannelModel(seed=seed + 17),
            cross=dl_cross or CrossTrafficModel.idle(),
            harq=HarqEntity(
                rtt_slots=cell.harq_rtt_slots,
                max_retx=cell.harq_max_retx,
                seed=seed + 19,
            ),
            scheduler=scheduler,
            grant_loop=None,
        )

    # -- packet ingress ---------------------------------------------------------

    def send_uplink(self, packet_id: int, size_bytes: int, now_us: int) -> None:
        """Enqueue a packet at the UE for uplink transmission."""
        self._enqueue(self.ul, packet_id, size_bytes, now_us)

    def send_downlink(self, packet_id: int, size_bytes: int, now_us: int) -> None:
        """Enqueue a packet at the gNB for downlink transmission."""
        self._enqueue(self.dl, packet_id, size_bytes, now_us)

    def _enqueue(
        self, direction: _Direction, packet_id: int, size_bytes: int, now_us: int
    ) -> None:
        placed = direction.buffer.enqueue(packet_id, size_bytes, now_us)
        direction.reassembly.register_packet(
            packet_id, placed.start_offset, placed.end_offset, now_us
        )
        self._packet_sizes[packet_id] = size_bytes

    # -- introspection --------------------------------------------------------

    def buffered_bytes(self, uplink: bool) -> int:
        """Current RLC queue depth (the Fig. 12 'BSR' subplot)."""
        direction = self.ul if uplink else self.dl
        return direction.buffer.buffered_bytes()

    @property
    def now_us(self) -> int:
        return self._current_slot * self.grid.slot_us

    # -- time stepping -----------------------------------------------------------

    def step_to(self, target_us: int) -> List[RanDelivery]:
        """Advance the simulator through all slots ending at or before
        *target_us*; return packets delivered in that span."""
        target_slot = target_us // self.grid.slot_us
        while self._current_slot < target_slot:
            self._step_slot(self._current_slot)
            self._current_slot += 1
        out = self._deliveries
        self._deliveries = []
        return out

    # -- slot machinery -----------------------------------------------------------

    def _step_slot(self, slot: int) -> None:
        ts = self.grid.slot_start_us(slot)
        self.rrc.step(ts)
        self._handle_new_rrc_transitions(ts)
        connected = self.rrc.is_connected(ts)
        slot_type = self.grid.slot_type(slot)

        # HARQ resolutions and RLC recoveries happen regardless of slot
        # type (they are timing abstractions for decode/ARQ completion).
        for direction in (self.ul, self.dl):
            self._resolve_harq(direction, slot, ts)
            self._process_rlc_recoveries(direction, slot, ts)

        # BSRs ride uplink control channels, which exist in every slot of
        # practical TDD configurations; the data grant itself still only
        # lands on an uplink slot (next_slot_of_type in the grant loop).
        if connected and self.ul.grant_loop is not None:
            self.ul.grant_loop.maybe_send_bsr(
                slot, self.ul.buffer.buffered_bytes()
            )

        if slot_type.carries_downlink:
            self._schedule_downlink(slot, ts, connected)
        if slot_type.carries_uplink:
            self._schedule_uplink(slot, ts, connected)

        if slot % self._buffer_log_period_slots == 0:
            self._log_buffers(ts)

    def _handle_new_rrc_transitions(self, ts: int) -> None:
        """React to RRC releases: log them and reset the UL grant loop
        (pending grants die with the connection)."""
        while self._seen_rrc_transitions < len(self.rrc.transitions):
            transition = self.rrc.transitions[self._seen_rrc_transitions]
            self._seen_rrc_transitions += 1
            if self.ul.grant_loop is not None:
                self.ul.grant_loop.reset()
            if self.collector is not None:
                self.collector.record_gnb_log(
                    GnbLogRecord(
                        ts_us=transition.release_us,
                        kind=GnbLogKind.RRC_RELEASE,
                        rnti=transition.old_rnti,
                    )
                )
                self.collector.record_gnb_log(
                    GnbLogRecord(
                        ts_us=transition.reconnect_us,
                        kind=GnbLogKind.RRC_CONNECT,
                        rnti=transition.new_rnti,
                    )
                )

    # -- scheduling -----------------------------------------------------------------

    def _schedule_downlink(self, slot: int, ts: int, connected: bool) -> None:
        direction = self.dl
        cross_demands = list(direction.cross.demands_at(ts))
        exp_prbs = 0
        mcs = 0
        if connected and direction.buffer.buffered_bytes() > 0:
            mcs = direction.selection_mcs(slot, ts)
            demand_prbs = prbs_needed(direction.buffer.buffered_bytes(), mcs)
            allocation = direction.scheduler.allocate(
                demand_prbs, mcs, cross_demands
            )
            exp_prbs = allocation.exp_prbs
            cross_allocs = allocation.cross_allocations
        else:
            cross_allocs = cross_demands
        if exp_prbs > 0:
            self._transmit_tb(direction, slot, ts, exp_prbs, mcs)
        self._record_cross_dci(slot, ts, cross_allocs, is_uplink=False)

    def _schedule_uplink(self, slot: int, ts: int, connected: bool) -> None:
        direction = self.ul
        loop = direction.grant_loop
        assert loop is not None
        cross_demands = list(direction.cross.demands_at(ts))

        if connected:
            loop.maybe_issue_proactive(slot)
            grants = loop.grants_usable_at(slot)
        else:
            grants = []

        for grant in grants:
            mcs = direction.selection_mcs(slot, ts)
            demand_prbs = prbs_needed(grant.granted_bytes, mcs)
            allocation = direction.scheduler.allocate(
                demand_prbs, mcs, cross_demands
            )
            if allocation.exp_prbs > 0:
                self._transmit_tb(
                    direction,
                    slot,
                    ts,
                    allocation.exp_prbs,
                    mcs,
                    proactive=grant.proactive,
                )
            cross_demands = allocation.cross_allocations
        self._record_cross_dci(slot, ts, cross_demands, is_uplink=True)

    def _transmit_tb(
        self,
        direction: _Direction,
        slot: int,
        ts: int,
        n_prb: int,
        mcs: int,
        proactive: bool = False,
    ) -> None:
        tbs_bits = transport_block_size_bits(n_prb, mcs)
        capacity = tbs_bits // 8
        segment = direction.buffer.take(capacity)
        ranges = [(segment.start_offset, segment.end_offset)] if segment else []
        used = segment.size_bytes if segment else 0
        if used == 0 and not proactive:
            return  # nothing to send and no grant to waste
        tb = TransportBlock(
            tb_id=self._next_tb_id,
            slot=slot,
            n_prb=n_prb,
            mcs=mcs,
            tbs_bits=tbs_bits,
            ranges=ranges,
            is_uplink=direction.is_uplink,
            proactive=proactive,
            used_bytes=used,
        )
        self._next_tb_id += 1
        sample = direction.sample_at(slot, ts)
        tb_bler = bler(mcs, sample.sinr_db)
        direction.harq.submit(tb, tb_bler)
        if self.keep_tb_map:
            packet_ids = tuple(
                p.packet_id
                for start, end in ranges
                for p in direction.buffer.packets_overlapping(start, end)
            )
            self.tb_map.append(
                TbPacketMap(
                    tb_id=tb.tb_id,
                    ts_us=ts,
                    is_uplink=direction.is_uplink,
                    packet_ids=packet_ids,
                    tbs_bits=tbs_bits,
                    proactive=proactive,
                )
            )

    # -- HARQ / RLC resolution ------------------------------------------------------

    def _resolve_harq(self, direction: _Direction, slot: int, ts: int) -> None:
        for resolution in direction.harq.poll(slot):
            tb = resolution.tb
            self._record_dci(direction, tb, resolution.attempt, ts, resolution)
            if resolution.outcome is HarqOutcome.DECODED:
                for start, end in tb.ranges:
                    self._deliver_range(direction, start, end, ts)
            elif resolution.outcome is HarqOutcome.FAILED:
                recover_at = ts + self.cell.rlc_retx_delay_us
                for start, end in tb.ranges:
                    direction.rlc_recoveries.append((recover_at, start, end))
                direction.rlc_retx_count += 1
                if self.collector is not None:
                    self.collector.record_gnb_log(
                        GnbLogRecord(
                            ts_us=recover_at,
                            kind=GnbLogKind.RLC_RETX,
                            is_uplink=direction.is_uplink,
                            rnti=self.rrc.rnti,
                        )
                    )
            # RETRANSMIT: the HARQ entity already queued the next attempt.

    def _process_rlc_recoveries(
        self, direction: _Direction, slot: int, ts: int
    ) -> None:
        if not direction.rlc_recoveries:
            return
        due = [r for r in direction.rlc_recoveries if r[0] <= ts]
        if not due:
            return
        direction.rlc_recoveries = [
            r for r in direction.rlc_recoveries if r[0] > ts
        ]
        # An RLC retransmission still rides the radio: if the channel is
        # in a blackout (even MCS 0 undecodable) or the UE is in an RRC
        # transition, the retransmission fails too and the RLC timer
        # restarts — this is what lets deep fades stall delivery for
        # their full duration rather than exactly one RLC round trip.
        sample = direction.sample_at(slot, ts)
        blocked = (
            bler(0, sample.sinr_db) > 0.8
            or not self.rrc.is_connected(ts)
        )
        if blocked:
            retry_at = ts + self.cell.rlc_retx_delay_us
            for _, start, end in due:
                direction.rlc_recoveries.append((retry_at, start, end))
            direction.rlc_retx_count += len(due)
            return
        for recover_at, start, end in due:
            self._deliver_range(direction, start, end, max(recover_at, ts))

    def _deliver_range(
        self, direction: _Direction, start: int, end: int, ts: int
    ) -> None:
        for delivered in direction.reassembly.on_range_received(start, end, ts):
            self._deliveries.append(
                RanDelivery(
                    packet_id=delivered.packet_id,
                    delivered_us=delivered.delivered_us,
                    is_uplink=direction.is_uplink,
                    hol_blocked=delivered.hol_blocked,
                )
            )
        direction.buffer.release_delivered(direction.reassembly.delivered_offset)

    # -- telemetry --------------------------------------------------------------------

    def _record_dci(
        self,
        direction: _Direction,
        tb: TransportBlock,
        attempt: int,
        ts: int,
        resolution,
    ) -> None:
        if self.collector is None:
            return
        self.collector.record_dci(
            DciRecord(
                ts_us=ts,
                slot=resolution.slot,
                rnti=self.rrc.rnti,
                is_uplink=direction.is_uplink,
                n_prb=tb.n_prb,
                mcs=tb.mcs,
                tbs_bits=tb.tbs_bits,
                is_retx=attempt > 0,
                harq_attempt=attempt,
                crc_ok=resolution.outcome is HarqOutcome.DECODED,
                proactive=tb.proactive,
                used_bytes=tb.used_bytes,
            )
        )

    def _record_cross_dci(
        self, slot: int, ts: int, allocations, is_uplink: bool
    ) -> None:
        if self.collector is None:
            return
        for rnti, prbs in allocations:
            if prbs <= 0:
                continue
            tbs = transport_block_size_bits(prbs, self.CROSS_TRAFFIC_MCS)
            self.collector.record_dci(
                DciRecord(
                    ts_us=ts,
                    slot=slot,
                    rnti=rnti,
                    is_uplink=is_uplink,
                    n_prb=prbs,
                    mcs=self.CROSS_TRAFFIC_MCS,
                    tbs_bits=tbs,
                    used_bytes=tbs // 8,
                )
            )

    def _log_buffers(self, ts: int) -> None:
        if self.collector is None:
            return
        for direction in (self.ul, self.dl):
            self.collector.record_gnb_log(
                GnbLogRecord(
                    ts_us=ts,
                    kind=GnbLogKind.RLC_BUFFER,
                    is_uplink=direction.is_uplink,
                    buffer_bytes=direction.buffer.buffered_bytes(),
                    rnti=self.rrc.rnti,
                )
            )
