"""The slot-stepped radio access network simulator.

Connects the PHY (:mod:`repro.phy`), MAC (:mod:`repro.mac`), RLC
(:mod:`repro.rlc`) and RRC (:mod:`repro.rrc`) models into a bidirectional
bearer: packets enter an RLC buffer, get scheduled into transport blocks
slot by slot, survive HARQ/RLC retransmissions, and emerge with realistic
delay — while emitting the DCI and gNB-log telemetry Domino consumes.
"""

from repro.ran.simulator import RanDelivery, RanSimulator, TbPacketMap

__all__ = ["RanDelivery", "RanSimulator", "TbPacketMap"]
