"""The live multi-session RCA service (repro.live)."""

import asyncio
import random

import pytest

from repro.core.detector import DominoDetector
from repro.core.stats import DominoStats
from repro.fleet.aggregate import FleetAggregate
from repro.fleet.executor import CHAIN_SEPARATOR
from repro.fleet.scenarios import ScenarioSpec
from repro.live import (
    LiveAggregator,
    LiveRcaService,
    ReplaySource,
    SimSource,
    TelemetryBatch,
    canonical_detections,
    render_snapshot,
)
from repro.live.supervisor import SessionSupervisor
from repro.telemetry.io import save_bundle


@pytest.fixture(scope="module")
def replay_bundle(private_bundle):
    return private_bundle


def _collect_live_detections(service):
    """Tap every supervisor's detection stream (all windows, in order)."""
    per_session = {}
    for supervisor in service.supervisors:
        collected = per_session[supervisor.session_id] = []
        downstream = supervisor.on_detections

        def tap(sid, dets, chains, wm, _c=collected, _d=downstream):
            _c.extend(dets)
            _d(sid, dets, chains, wm)

        supervisor.on_detections = tap
    return per_session


def test_replay_matches_offline_byte_identical(replay_bundle):
    """The acceptance bar: replaying a recorded trace through the live
    service yields detections byte-identical to the offline detector."""
    offline = DominoDetector().analyze(replay_bundle)
    service = LiveRcaService(
        [ReplaySource(replay_bundle, session_id="s0", profile="amarisoft")]
    )
    live = _collect_live_detections(service)
    asyncio.run(service.run())
    assert canonical_detections(live["s0"]) == canonical_detections(
        offline.windows
    )


def test_replay_from_jsonl_path_matches_offline(tmp_path, replay_bundle):
    """A trace streamed from disk (iter_records, no whole-file parse)
    detects identically to the in-memory bundle."""
    path = str(tmp_path / "trace.jsonl")
    save_bundle(replay_bundle, path)
    offline = DominoDetector().analyze(replay_bundle)
    source = ReplaySource(path, session_id="disk")
    assert source.gnb_log_available == replay_bundle.gnb_log_available
    assert source.duration_us == replay_bundle.duration_us
    service = LiveRcaService([source])
    live = _collect_live_detections(service)
    asyncio.run(service.run())
    assert canonical_detections(live["disk"]) == canonical_detections(
        offline.windows
    )


class _ShuffledReplay(ReplaySource):
    """Replay with records shuffled inside each batch (out-of-order
    delivery within a watermark, as real multi-source feeds produce)."""

    async def batches(self):
        rng = random.Random(11)
        async for batch in super().batches():
            rng.shuffle(batch.records)
            yield batch


def test_out_of_order_feed_matches_offline(replay_bundle):
    offline = DominoDetector().analyze(replay_bundle)
    service = LiveRcaService(
        [_ShuffledReplay(replay_bundle, session_id="ooo")]
    )
    live = _collect_live_detections(service)
    asyncio.run(service.run())
    assert canonical_detections(live["ooo"]) == canonical_detections(
        offline.windows
    )


# -- backpressure ----------------------------------------------------------------


class _ScriptedSource:
    """A source that emits pre-built batches back to back."""

    def __init__(self, batch_list, session_id="scripted"):
        self._batches = batch_list
        self.session_id = session_id
        self.profile = "scripted"
        self.impairment = "none"
        self.gnb_log_available = False

    async def batches(self):
        for batch in self._batches:
            yield batch


def _record_batches(bundle, batch_us, duration_us):
    """Slice a bundle's records into watermarked batches, final last."""
    from repro.live.sources import record_time_us

    records = sorted(
        list(bundle.dci)
        + list(bundle.gnb_log)
        + list(bundle.packets)
        + list(bundle.webrtc_stats),
        key=record_time_us,
    )
    batches = []
    cursor = batch_us
    pending = []
    for record in records:
        while record_time_us(record) >= cursor:
            batches.append(TelemetryBatch(pending, watermark_us=cursor))
            pending = []
            cursor += batch_us
        pending.append(record)
    batches.append(
        TelemetryBatch(pending, watermark_us=duration_us, final=True)
    )
    return batches


def test_drop_oldest_backpressure_counts_lag(replay_bundle):
    """With a tiny queue and a free-running pump, drop-oldest discards
    the oldest batches and accounts every dropped record as lag."""
    batches = _record_batches(
        replay_bundle, 1_000_000, replay_bundle.duration_us
    )
    total_records = sum(len(b.records) for b in batches)
    supervisor = SessionSupervisor(
        _ScriptedSource(batches),
        queue_batches=2,
        backpressure="drop_oldest",
    )
    asyncio.run(supervisor.run())
    # The pump floods the queue in one task slice; everything that did
    # not fit in 2 slots (plus the end-of-feed sentinel) was dropped.
    assert supervisor.lag_events > 0
    assert supervisor.lag_events < total_records
    snapshot = _final_session_snapshot(supervisor)
    assert snapshot.lag_events == supervisor.lag_events


def test_drop_oldest_still_flushes_tail_windows(replay_bundle):
    """Even when the final batch itself is dropped by backpressure, the
    end-of-feed flush advances to the feed's last watermark so tail
    windows emit (with whatever records survived)."""
    offline = DominoDetector().analyze(replay_bundle)
    batches = _record_batches(
        replay_bundle, 1_000_000, replay_bundle.duration_us
    )
    supervisor = SessionSupervisor(
        _ScriptedSource(batches),
        queue_batches=1,  # worst case: every enqueue evicts
        backpressure="drop_oldest",
    )
    asyncio.run(supervisor.run())
    assert supervisor.lag_events > 0
    assert supervisor.watermark_us == replay_bundle.duration_us
    assert supervisor.stream.windows_emitted == len(offline.windows)


def test_block_backpressure_never_drops(replay_bundle):
    batches = _record_batches(
        replay_bundle, 1_000_000, replay_bundle.duration_us
    )
    supervisor = SessionSupervisor(
        _ScriptedSource(batches), queue_batches=2, backpressure="block"
    )
    asyncio.run(supervisor.run())
    assert supervisor.lag_events == 0
    assert supervisor.watermark_us == replay_bundle.duration_us


def _final_session_snapshot(supervisor):
    loop = asyncio.new_event_loop()
    try:
        return supervisor.snapshot(loop.time())
    finally:
        loop.close()


def test_rejects_unknown_backpressure(replay_bundle):
    with pytest.raises(ValueError):
        SessionSupervisor(
            _ScriptedSource([]), backpressure="drop_newest"
        )


# -- idle eviction ---------------------------------------------------------------


class _StallingSource:
    """Emits one batch, then hangs forever (a wedged collector)."""

    session_id = "stalled"
    profile = "scripted"
    impairment = "none"
    gnb_log_available = False

    async def batches(self):
        yield TelemetryBatch([], watermark_us=1_000_000)
        await asyncio.sleep(3600)


def test_idle_session_evicted(replay_bundle):
    """A wedged feed is evicted after idle_timeout_s; healthy sessions
    finish and the service returns instead of hanging."""
    service = LiveRcaService(
        [
            ReplaySource(replay_bundle, session_id="healthy"),
            _StallingSource(),
        ],
        snapshot_every_s=0.05,
        idle_timeout_s=0.2,
    )
    final = asyncio.run(asyncio.wait_for(service.run(), timeout=30))
    states = {s.session_id: s.state for s in final.sessions}
    assert states["healthy"] == "done"
    assert states["stalled"] == "evicted"
    assert final.n_evicted == 1
    assert final.n_done == 1


# -- incremental aggregation -------------------------------------------------------


def test_live_aggregator_matches_batch_stats(replay_bundle):
    """Feeding windows one at a time gives the same episode counts as
    the offline DominoStats batch pass over the full report."""
    report = DominoDetector().analyze(replay_bundle)
    stats = DominoStats.from_report(report)

    aggregator = LiveAggregator()
    aggregator.register("s", profile="amarisoft")
    for window in report.windows:  # one window per update: worst case
        aggregator.update("s", [window], report.chains)
    aggregator.note_watermark("s", replay_bundle.duration_us)

    outcome = aggregator.session_outcomes()[0]
    expected_chains = {
        CHAIN_SEPARATOR.join(chain): count
        for chain, count in stats.chain_episode_counts().items()
    }
    assert outcome.chain_counts == expected_chains
    assert outcome.cause_counts == {
        kind.value: count
        for kind, count in stats.cause_episode_counts().items()
        if count
    }
    assert outcome.consequence_counts == {
        kind.value: count
        for kind, count in stats.consequence_episode_counts().items()
        if count
    }
    assert outcome.degradation_events_per_min == pytest.approx(
        stats.degradation_events_per_min()
    )


def test_live_aggregator_chunked_equals_windowed(replay_bundle):
    """Arbitrary update batch boundaries don't change the rollup."""
    report = DominoDetector().analyze(replay_bundle)
    one = LiveAggregator()
    one.register("s")
    for window in report.windows:
        one.update("s", [window], report.chains)
    chunked = LiveAggregator()
    chunked.register("s")
    for start in range(0, len(report.windows), 4):
        chunked.update(
            "s", report.windows[start : start + 4], report.chains
        )
    assert (
        one.session_outcomes()[0].chain_counts
        == chunked.session_outcomes()[0].chain_counts
    )
    assert (
        one.session_outcomes()[0].cause_counts
        == chunked.session_outcomes()[0].cause_counts
    )


def test_live_fleet_matches_fleet_aggregate(replay_bundle):
    """The live rollup and the offline FleetAggregate agree on fleet
    tables built from the same detections."""
    report = DominoDetector().analyze(replay_bundle)
    aggregator = LiveAggregator()
    for sid in ("a", "b"):
        aggregator.register(sid, profile="amarisoft")
        aggregator.update(sid, report.windows, report.chains)
        aggregator.note_watermark(sid, replay_bundle.duration_us)
    live_fleet = aggregator.fleet()
    batch_fleet = FleetAggregate.from_outcomes(
        aggregator.session_outcomes()
    )
    assert live_fleet.top_chains() == batch_fleet.top_chains()
    assert live_fleet.chain_frequency_table(
        "profile"
    ) == batch_fleet.chain_frequency_table("profile")
    assert live_fleet.total_minutes == pytest.approx(
        batch_fleet.total_minutes
    )


def test_fleet_aggregate_update_equals_from_outcomes(replay_bundle):
    """Incremental FleetAggregate.update == batch from_outcomes."""
    report = DominoDetector().analyze(replay_bundle)
    aggregator = LiveAggregator()
    for index, profile in enumerate(("amarisoft", "tmobile_fdd")):
        sid = f"s{index}"
        aggregator.register(sid, profile=profile)
        aggregator.update(sid, report.windows, report.chains)
        aggregator.note_watermark(sid, replay_bundle.duration_us)
    outcomes = aggregator.session_outcomes()
    incremental = FleetAggregate()
    for outcome in outcomes:
        incremental.update(outcome)
    batch = FleetAggregate.from_outcomes(outcomes)
    for group_by in ("profile", "impairment"):
        assert incremental.chain_frequency_table(
            group_by
        ) == batch.chain_frequency_table(group_by)
        assert incremental.cause_frequency_table(
            group_by
        ) == batch.cause_frequency_table(group_by)
    assert incremental.top_chains() == batch.top_chains()
    assert incremental.groups("profile") == batch.groups("profile")


# -- scale -------------------------------------------------------------------------


@pytest.fixture(scope="module")
def short_bundle():
    from repro.datasets.cells import AMARISOFT
    from repro.datasets.runner import make_cellular_session

    session = make_cellular_session(AMARISOFT, seed=7)
    return session.run(8_000_000).bundle


def test_64_concurrent_replay_sessions(short_bundle):
    """Acceptance: a 64-session replay campaign completes on one core,
    with per-session realtime factor and lag in the final snapshot."""
    sources = [
        ReplaySource(
            short_bundle, session_id=f"s{i:02d}", profile="amarisoft"
        )
        for i in range(64)
    ]
    service = LiveRcaService(sources, snapshot_every_s=0.5)
    final = asyncio.run(asyncio.wait_for(service.run(), timeout=120))
    assert final.n_sessions == 64
    assert final.n_done == 64
    assert len(final.sessions) == 64
    for session in final.sessions:
        assert session.watermark_s == pytest.approx(8.0)
        assert session.realtime_factor > 0
        assert session.lag_events == 0
    assert final.windows == 64 * 7  # 7 windows per 8 s session
    assert final.total_minutes == pytest.approx(64 * 8 / 60.0)


# -- SimSource ----------------------------------------------------------------------


def test_sim_source_drives_session_live():
    spec = ScenarioSpec(
        name="live-sim", profile="wired", seed=3, duration_s=8.0
    )
    service = LiveRcaService([SimSource(spec)])
    final = asyncio.run(asyncio.wait_for(service.run(), timeout=60))
    session = final.sessions[0]
    assert session.state == "done"
    assert session.watermark_s == pytest.approx(8.0)
    assert session.windows == 7


def test_sim_source_detects_impaired_cell():
    from repro.fleet.scenarios import ImpairmentSpec

    spec = ScenarioSpec(
        name="live-sim-cell",
        profile="amarisoft",
        seed=5,
        duration_s=10.0,
        impairment=ImpairmentSpec(
            name="ul_fade", ul_fades=((3.0, 1.5, 20.0),)
        ),
    )
    service = LiveRcaService([SimSource(spec)])
    final = asyncio.run(asyncio.wait_for(service.run(), timeout=60))
    assert final.sessions[0].state == "done"
    assert final.windows == 11
    assert final.detected_windows > 0
    assert final.top_chains  # the fade shows up in the rollup


# -- snapshots ----------------------------------------------------------------------


def test_snapshot_roundtrip_and_dashboard(tmp_path, short_bundle):
    from repro.live.aggregator import FleetSnapshot

    path = str(tmp_path / "snap.json")
    service = LiveRcaService(
        [ReplaySource(short_bundle, session_id="s0", profile="amarisoft")],
        snapshot_path=path,
    )
    final = asyncio.run(service.run())
    import json

    with open(path) as handle:
        loaded = FleetSnapshot.from_json(json.load(handle))
    assert loaded.n_sessions == final.n_sessions
    assert loaded.windows == final.windows
    assert [s.session_id for s in loaded.sessions] == ["s0"]
    text = render_snapshot(loaded)
    assert "live fleet" in text
    assert "s0" in text
    assert "rtf" in text


def test_duplicate_session_ids_rejected(short_bundle):
    with pytest.raises(ValueError):
        LiveRcaService(
            [
                ReplaySource(short_bundle, session_id="dup"),
                ReplaySource(short_bundle, session_id="dup"),
            ]
        )


# -- adaptive advance interval ---------------------------------------------------


def test_adaptive_advance_detections_stay_byte_identical(replay_bundle):
    """Adaptivity changes *when* windows are handed downstream, never
    *which* windows: a replayed trace still matches offline exactly."""
    offline = DominoDetector().analyze(replay_bundle)
    service = LiveRcaService(
        [ReplaySource(replay_bundle, session_id="ad", profile="amarisoft")],
        adaptive_advance=True,
    )
    live = _collect_live_detections(service)
    asyncio.run(service.run())
    assert canonical_detections(live["ad"]) == canonical_detections(
        offline.windows
    )
    supervisor = service.supervisors[0]
    assert (
        supervisor.min_advance_interval_us
        <= supervisor.advance_interval_us
        <= supervisor.max_advance_interval_us
    )


def test_adaptive_advance_backs_off_and_recovers(replay_bundle):
    """Queue pressure doubles the interval toward the cap; sustained
    idle halves it back toward the floor.  Lag accounting untouched."""
    from repro.live.supervisor import SessionSupervisor

    supervisor = SessionSupervisor(
        _ScriptedSource([]),
        adaptive_advance=True,
        advance_interval_us=4_000_000,
        queue_batches=4,
        backpressure="drop_oldest",
    )
    base = supervisor.advance_interval_us
    # Half-full queue → back off, doubling up to the cap.
    supervisor._queue.put_nowait(TelemetryBatch(watermark_us=1))
    supervisor._queue.put_nowait(TelemetryBatch(watermark_us=2))
    for _ in range(10):
        supervisor._adapt_advance_interval()
    assert supervisor.advance_interval_us == supervisor.max_advance_interval_us
    # Fresh lag alone (queue empty) also backs off once.
    supervisor._queue.get_nowait()
    supervisor._queue.get_nowait()
    lagged = SessionSupervisor(
        _ScriptedSource([]),
        adaptive_advance=True,
        advance_interval_us=4_000_000,
        backpressure="drop_oldest",
    )
    lagged.lag_events = 100
    lagged._adapt_advance_interval()
    assert lagged.advance_interval_us == 2 * 4_000_000
    assert lagged.lag_events == 100  # accounting preserved
    # Sustained idle → halve every IDLE_BATCHES_TO_SPEED_UP batches,
    # down to the floor.
    for _ in range(
        20 * SessionSupervisor.IDLE_BATCHES_TO_SPEED_UP
    ):
        supervisor._adapt_advance_interval()
    assert supervisor.advance_interval_us == supervisor.min_advance_interval_us
    assert supervisor.min_advance_interval_us == base // 4


def test_adaptive_one_deep_queue_never_pins_at_max(replay_bundle):
    """A 1-deep queue must not degenerate (`maxsize // 2 == 0` would
    make every batch look pressured): idle sessions still speed up."""
    from repro.live.supervisor import SessionSupervisor

    supervisor = SessionSupervisor(
        _ScriptedSource([]),
        adaptive_advance=True,
        queue_batches=1,
        backpressure="drop_oldest",
    )
    base = supervisor.advance_interval_us
    for _ in range(4 * SessionSupervisor.IDLE_BATCHES_TO_SPEED_UP):
        supervisor._adapt_advance_interval()
    assert supervisor.advance_interval_us == supervisor.min_advance_interval_us
    assert supervisor.advance_interval_us < base


def test_fixed_interval_by_default(replay_bundle):
    """Without opting in, the interval never moves (back-compat)."""
    from repro.live.supervisor import SessionSupervisor

    supervisor = SessionSupervisor(_ScriptedSource([]))
    base = supervisor.advance_interval_us
    supervisor.lag_events = 50
    for _ in range(8):
        supervisor._adapt_advance_interval()
    assert supervisor.advance_interval_us == base


# -- watch --follow trend view ---------------------------------------------------


def _fake_snapshot(seq, windows, detected, chain_totals):
    from repro.live.aggregator import FleetSnapshot

    return FleetSnapshot(
        seq=seq,
        wall_s=float(seq),
        n_sessions=1,
        n_running=1,
        n_done=0,
        n_evicted=0,
        n_failed=0,
        total_minutes=seq / 60.0,
        windows=windows,
        detected_windows=detected,
        lag_events=0,
        degradation_events_per_min=0.0,
        chain_totals=chain_totals,
    )


def test_snapshot_history_ring_is_bounded():
    from repro.live.dashboard import SnapshotHistory

    history = SnapshotHistory(maxlen=3)
    for seq in range(5):
        history.add(_fake_snapshot(seq, seq, 0, {}))
    assert len(history) == 3
    assert [s.seq for s in history] == [2, 3, 4]
    assert history.latest.seq == 4
    with pytest.raises(ValueError):
        SnapshotHistory(maxlen=1)


def test_render_trend_deltas_and_sparklines():
    from repro.live.dashboard import SnapshotHistory, render_trend, sparkline

    assert sparkline([]) == ""
    assert sparkline([0.0, 0.0]) == "▁▁"
    line = sparkline([0, 1, 2, 4])
    assert len(line) == 4 and line[-1] == "█"

    history = SnapshotHistory()
    history.add(_fake_snapshot(1, 10, 2, {"a --> b": 1}))
    assert "waiting" in render_trend(history)
    history.add(_fake_snapshot(2, 14, 3, {"a --> b": 3, "c --> d": 1}))
    history.add(_fake_snapshot(3, 20, 5, {"a --> b": 4, "c --> d": 1}))
    text = render_trend(history)
    assert "Trend (last 3 snapshots" in text
    assert "+6 last" in text  # windows delta 14→20
    assert "a --> b" in text and "(4 episodes)" in text
    assert "c --> d" in text
    assert any(ch in text for ch in "▁▂▃▄▅▆▇█")


def test_fleet_snapshot_chain_totals_roundtrip(short_bundle):
    """chain_totals ride snapshots (and their JSON round-trip), feeding
    the trend view the raw counts rates cannot provide."""
    from repro.live.aggregator import FleetSnapshot

    service = LiveRcaService(
        [ReplaySource(short_bundle, session_id="s0", profile="amarisoft")]
    )
    final = asyncio.run(service.run())
    assert final.chain_totals == {
        chain: count
        for chain, count in sorted(
            service.aggregator.fleet().fleet_chain_totals().items()
        )
    }
    loaded = FleetSnapshot.from_json(final.to_json())
    assert loaded.chain_totals == final.chain_totals
