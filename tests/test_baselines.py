"""Baseline detectors: app-only, correlation RCA, single-layer alerts."""

from repro.baselines.app_only import AppOnlyDetector
from repro.baselines.correlation import CorrelationRca
from repro.baselines.single_layer import SingleLayerAlerts
from repro.core.detector import DominoDetector


def test_app_only_sees_consequences_but_one_cause_bucket(cellular_bundle):
    report = AppOnlyDetector().analyze(cellular_bundle)
    assert report.root_cause_resolution() == 1
    assert len(report.windows) > 0
    # Consequences are visible from app stats alone.
    assert report.consequence_windows() > 0
    assert 0.0 <= report.attribution_rate() <= 1.0


def test_app_only_windows_use_app_features_only(cellular_bundle):
    report = AppOnlyDetector().analyze(cellular_bundle)
    for window in report.windows:
        for name in window.consequences:
            assert name.startswith(("local_", "remote_"))


def test_correlation_rca_produces_rankings(cellular_bundle):
    results = CorrelationRca().analyze(cellular_bundle)
    assert len(results) == 6  # 3 consequences x {local, remote}
    for result in results:
        assert len(result.ranking) > 3
        correlations = [abs(c) for _, c in result.ranking]
        assert correlations == sorted(correlations, reverse=True)
        assert all(-1.0 <= c <= 1.0 for _, c in result.ranking)


def test_correlation_rca_finds_signal_on_private_cell(private_bundle):
    """On the Amarisoft cell (poor UL channel) the correlator should put
    a UL metric near the top for at least one consequence."""
    results = CorrelationRca().analyze(private_bundle)
    top_causes = {r.top_cause for r in results if r.top_correlation > 0.1}
    assert any(name.startswith("ul_") for name in top_causes) or not top_causes


def test_single_layer_alert_volume(cellular_bundle):
    alerts = SingleLayerAlerts().analyze(cellular_bundle)
    assert alerts.n_windows > 0
    assert alerts.total_alerts > 0
    # UL scheduling fires in essentially every window; it alone exceeds
    # any consolidated chain count.
    assert alerts.alert_counts["ul_scheduling"] >= alerts.n_windows * 0.9


def test_single_layer_reduction_vs_domino(cellular_bundle):
    alerts = SingleLayerAlerts().analyze(cellular_bundle)
    report = DominoDetector().analyze(cellular_bundle)
    reduction = alerts.reduction_vs(report)
    assert reduction >= 1.0  # chaining never *increases* volume


def test_granger_rca_scores_lagged_drivers(private_bundle):
    from repro.baselines.causal import GrangerRca

    results = GrangerRca().analyze(private_bundle)
    assert results, "no consequence series analyzed"
    ranked = [r for r in results if r.ranking]
    assert ranked, "Granger found no candidate driver at all"
    for result in ranked:
        scores = [score for _, score in result.ranking]
        # F-statistics: non-negative and sorted strongest-first.
        assert all(score >= 0.0 for score in scores)
        assert scores == sorted(scores, reverse=True)


def test_pcmci_rca_prunes_to_a_subset_of_links(private_bundle):
    from repro.baselines.causal import PcmciRca

    loose = PcmciRca(alpha=0.0).analyze(private_bundle)
    strict = PcmciRca(alpha=0.5).analyze(private_bundle)
    n_loose = sum(len(r.ranking) for r in loose)
    n_strict = sum(len(r.ranking) for r in strict)
    # Conditional-independence pruning is monotone in alpha.
    assert n_strict <= n_loose


def test_causal_baselines_are_deterministic(private_bundle):
    from repro.baselines.causal import GrangerRca, PcmciRca

    for cls in (GrangerRca, PcmciRca):
        first = cls().analyze(private_bundle)
        second = cls().analyze(private_bundle)
        assert [(r.consequence, r.ranking) for r in first] == [
            (r.consequence, r.ranking) for r in second
        ]


def test_cause_label_for_series_strips_direction_prefix():
    from repro.baselines.causal import cause_label_for_series

    assert cause_label_for_series("ul_harq_retx") == "HARQ ReTX"
    assert cause_label_for_series("dl_other_prbs") == "Cross Traffic"
    assert cause_label_for_series("rrc_events") == "RRC State"
    assert cause_label_for_series("not_a_series") is None
