"""The text DSL for causal-chain definitions (Fig. 11).

One chain per line, nodes joined by ``-->`` (or ``->``)::

    dl_rlc_retx --> forward_delay_up --> local_jitter_buffer_drain
    dl_harq_retx --> forward_delay_up --> local_jitter_buffer_drain

``#`` starts a comment; blank lines are ignored.

Two *relative* delay aliases make definitions readable:

* ``forward_delay_up`` — delay on the path the root cause sits on
  (a ``dl_*`` cause resolves it to ``dl_delay_up``);
* ``reverse_delay_up`` — delay on the opposite direction.

A direction-less root (``rrc_change``) expands an aliased chain into
both directions.  Unknown node names raise
:class:`~repro.errors.UnknownEventError` listing valid names.
"""

from __future__ import annotations

import re
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.core.features import FEATURE_NAMES
from repro.errors import DslSyntaxError, UnknownEventError

_ARROW = re.compile(r"\s*-{1,2}>\s*")

FORWARD_ALIAS = "forward_delay_up"
REVERSE_ALIAS = "reverse_delay_up"
_ALIASES = (FORWARD_ALIAS, REVERSE_ALIAS)


def _root_direction(root: str) -> Optional[str]:
    """Direction prefix of a root cause node, if any."""
    if root.startswith("ul_"):
        return "ul"
    if root.startswith("dl_"):
        return "dl"
    return None


def _resolve_aliases(
    chain: Sequence[str], line_number: int, line: str
) -> List[Tuple[str, ...]]:
    """Expand forward/reverse delay aliases into concrete node names."""
    if not any(node in _ALIASES for node in chain):
        return [tuple(chain)]
    direction = _root_direction(chain[0])
    directions = [direction] if direction else ["ul", "dl"]
    resolved: List[Tuple[str, ...]] = []
    for forward in directions:
        reverse = "dl" if forward == "ul" else "ul"
        mapping = {
            FORWARD_ALIAS: f"{forward}_delay_up",
            REVERSE_ALIAS: f"{reverse}_delay_up",
        }
        resolved.append(tuple(mapping.get(node, node) for node in chain))
    return resolved


def parse_chains(
    text: str, known_events: Optional[Iterable[str]] = None
) -> List[Tuple[str, ...]]:
    """Parse DSL *text* into concrete chains (tuples of feature names).

    Args:
        text: the chain definitions.
        known_events: valid node names (defaults to the 36 features).

    Raises:
        DslSyntaxError: malformed line.
        UnknownEventError: node name not in *known_events*.
    """
    known = set(known_events if known_events is not None else FEATURE_NAMES)
    chains: List[Tuple[str, ...]] = []
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        parts = [part.strip() for part in _ARROW.split(line)]
        if len(parts) < 2:
            raise DslSyntaxError(
                line_number, raw_line, "expected at least two nodes joined by -->"
            )
        if any(not part for part in parts):
            raise DslSyntaxError(line_number, raw_line, "empty node name")
        for part in parts:
            if not re.fullmatch(r"[a-z][a-z0-9_]*", part):
                raise DslSyntaxError(
                    line_number,
                    raw_line,
                    f"invalid node name {part!r} (lowercase identifiers only)",
                )
        for chain in _resolve_aliases(parts, line_number, raw_line):
            for node in chain:
                if node not in known:
                    raise UnknownEventError(node, sorted(known))
            chains.append(chain)
    return chains


def format_chains(chains: Iterable[Sequence[str]]) -> str:
    """Render chains back into canonical DSL text (round-trip helper)."""
    return "\n".join(" --> ".join(chain) for chain in chains)
