"""Near-real-time streaming detection.

§1 positions Domino for telemetry "network operators can provide on a
continuous, near real-time basis".  :class:`StreamingDomino` consumes
records incrementally: feed it telemetry as it arrives, call
:meth:`advance` with the current time, and receive detections for every
window whose data is complete — with bounded memory (old records are
evicted once no future window can reference them).

Each processing chunk runs through the same
:class:`~repro.core.detector.DominoDetector` as offline analysis, so
the vectorized batch feature engine (``DetectorConfig.use_batch``) and
the single-pass timeline ingest apply here too — the per-chunk cost is
what bounds how far behind real time a live deployment can fall.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field, replace
from typing import List, Tuple

from repro.core.detector import DetectorConfig, DominoDetector, WindowDetection
from repro.telemetry.collect import TelemetryCollector
from repro.telemetry.records import (
    DciRecord,
    GnbLogRecord,
    PacketRecord,
    WebRtcStatsRecord,
    record_time_us,
)
from repro.telemetry.timeline import Timeline


@dataclass
class StreamingDomino:
    """Incremental Domino over a live telemetry feed.

    Args:
        config: detector configuration (window, step, thresholds, chains).
        chunk_us: how much history each processing pass spans; must be at
            least one window.  Larger chunks amortise resampling cost.
        cellular_client / wired_client: client-name labels for the
            WebRTC stats feed.
        gnb_log_available: whether gNB records should be retained.
    """

    config: DetectorConfig = field(default_factory=DetectorConfig)
    chunk_us: int = 30_000_000
    cellular_client: str = "cellular"
    wired_client: str = "wired"
    gnb_log_available: bool = True

    def __post_init__(self) -> None:
        if self.chunk_us < self.config.window_us:
            raise ValueError("chunk_us must cover at least one window")
        self._detector = DominoDetector(self.config)
        self._next_window_start_us = 0
        # Time-ordered (ts, seq, record) entries; feed() appends and the
        # next advance() sorts once, so chunk extraction is a bisect
        # slice instead of a full rescan per chunk.  seq keeps the sort
        # stable for equal timestamps (records never get compared).
        self._records: List[Tuple[int, int, object]] = []
        self._n_sorted = 0
        self._seq = 0
        self.windows_emitted = 0
        self.sorts_performed = 0

    # -- ingestion ---------------------------------------------------------------

    def feed_dci(self, record: DciRecord) -> None:
        self.feed(record)

    def feed_gnb_log(self, record: GnbLogRecord) -> None:
        self.feed(record)

    def feed_packet(self, record: PacketRecord) -> None:
        self.feed(record)

    def feed_webrtc_stats(self, record: WebRtcStatsRecord) -> None:
        self.feed(record)

    def feed(self, record) -> None:
        """Type-dispatching convenience ingester."""
        entry = (record_time_us(record), self._seq, record)
        # In-order feeds (the common live case: a collector tailing
        # time-ordered sources) keep the buffer sorted as they append,
        # so advance() never has to re-sort; only a genuinely
        # out-of-order arrival invalidates the sorted prefix.
        if self._n_sorted == len(self._records) and (
            not self._records or self._records[-1] <= entry
        ):
            self._n_sorted += 1
        self._records.append(entry)
        self._seq += 1

    def _ensure_sorted(self) -> None:
        if self._n_sorted < len(self._records):
            self._records.sort()
            self._n_sorted = len(self._records)
            self.sorts_performed += 1

    # -- processing ----------------------------------------------------------------

    def advance(self, now_us: int) -> List[WindowDetection]:
        """Process every window that ends at or before *now_us*.

        Returns newly completed window detections, in order.  Records
        older than one window before the processing frontier are
        evicted.
        """
        out: List[WindowDetection] = []
        window_us = self.config.window_us
        step_us = self.config.step_us
        self._ensure_sorted()
        while self._next_window_start_us + window_us <= now_us:
            chunk_start = self._next_window_start_us
            chunk_end = min(chunk_start + self.chunk_us, now_us)
            n_windows = (chunk_end - chunk_start - window_us) // step_us + 1
            if n_windows <= 0:
                break
            out.extend(self._process_chunk(chunk_start, chunk_end))
        self._evict(self._next_window_start_us)
        return out

    def _process_chunk(
        self, chunk_start: int, chunk_end: int
    ) -> List[WindowDetection]:
        collector = TelemetryCollector(
            "stream",
            cellular_client=self.cellular_client,
            wired_client=self.wired_client,
            gnb_log_available=self.gnb_log_available,
        )
        # _records is sorted by (ts, seq); only [chunk_start, chunk_end)
        # can land in this chunk's windows (earlier records would shift
        # to negative timestamps and were only ever skipped).
        lo = bisect.bisect_left(self._records, (chunk_start,))
        hi = bisect.bisect_left(self._records, (chunk_end,))
        for _, _, record in self._records[lo:hi]:
            shifted = self._shift(record, -chunk_start)
            if shifted is None:
                continue
            if isinstance(shifted, DciRecord):
                collector.record_dci(shifted)
            elif isinstance(shifted, GnbLogRecord):
                collector.record_gnb_log(shifted)
            elif isinstance(shifted, PacketRecord):
                collector.record_packet_sent(shifted)
            elif isinstance(shifted, WebRtcStatsRecord):
                collector.record_webrtc_stats(shifted)
        bundle = collector.bundle(chunk_end - chunk_start)
        timeline = Timeline.from_bundle(bundle, dt_us=self.config.dt_us)
        report = self._detector.analyze_timeline(timeline)
        emitted = []
        for window in report.windows:
            emitted.append(
                WindowDetection(
                    start_us=window.start_us + chunk_start,
                    end_us=window.end_us + chunk_start,
                    features=window.features,
                    consequences=window.consequences,
                    causes=window.causes,
                    chain_ids=window.chain_ids,
                )
            )
        if emitted:
            self._next_window_start_us = (
                emitted[-1].start_us + self.config.step_us
            )
        else:
            self._next_window_start_us = chunk_start + self.config.step_us
        self.windows_emitted += len(emitted)
        return emitted

    @staticmethod
    def _shift(record, delta_us: int):
        """Return a copy of *record* with timestamps shifted by delta."""
        if isinstance(record, PacketRecord):
            sent = record.sent_us + delta_us
            if sent < 0:
                return None
            received = (
                record.received_us + delta_us
                if record.received_us is not None
                else None
            )
            return replace(record, sent_us=sent, received_us=received)
        if isinstance(record, (DciRecord, GnbLogRecord, WebRtcStatsRecord)):
            ts = record.ts_us + delta_us
            if ts < 0:
                return None
            return replace(record, ts_us=ts)
        return None

    def _evict(self, frontier_us: int) -> None:
        """Drop records no future window can reference."""
        horizon = frontier_us - self.config.window_us
        if horizon <= 0:
            return
        keep_from = bisect.bisect_left(self._records, (horizon,))
        if keep_from:
            del self._records[:keep_from]
            self._n_sorted = len(self._records)

    @property
    def chains(self) -> List[Tuple[str, ...]]:
        """The chain tuples detections' ``chain_ids`` index into."""
        return self._detector.chains

    @property
    def buffered_records(self) -> int:
        return len(self._records)

    @property
    def pending_record_count(self) -> int:
        """Buffered records not yet consumed by a completed window —
        everything at or past the processing frontier.  Together with
        :attr:`buffered_records` this is what a live supervisor reports
        as its bounded-memory stats."""
        self._ensure_sorted()
        return len(self._records) - bisect.bisect_left(
            self._records, (self._next_window_start_us,)
        )

    @property
    def eviction_watermark_us(self) -> int:
        """Timestamp below which records have been evicted: nothing
        older than this can still be buffered (no future window can
        reference it)."""
        return max(0, self._next_window_start_us - self.config.window_us)

    @property
    def frontier_us(self) -> int:
        """Start of the next window advance() will complete."""
        return self._next_window_start_us
