"""Human-readable rendering of Domino statistics (terminal tables).

Formats the Fig. 10 frequencies and the Table 2/4 matrices the way the
paper lays them out, so benchmark output can be compared side by side
with the published numbers.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.core.chains import CauseKind, ConsequenceKind
from repro.core.stats import DominoStats

_CONSEQUENCE_LABELS = {
    ConsequenceKind.JITTER_BUFFER_DRAIN: "Jitter Buffer Drains",
    ConsequenceKind.TARGET_BITRATE_DOWN: "Target Bitrate v",
    ConsequenceKind.PUSHBACK_RATE_DOWN: "Pushback Rate v",
}


def _format_row(label: str, cells: Iterable[str], width: int = 14) -> str:
    return label.ljust(22) + "".join(cell.rjust(width) for cell in cells)


def render_frequency_table(
    stats_by_deployment: Dict[str, DominoStats],
) -> str:
    """Fig. 10: cause/consequence occurrence frequency per minute."""
    deployments = list(stats_by_deployment)
    lines: List[str] = []
    lines.append("Causes in 5G (events per minute)")
    lines.append(_format_row("", deployments))
    for kind in CauseKind:
        cells = [
            f"{stats_by_deployment[d].cause_frequencies_per_min()[kind]:.2f}"
            for d in deployments
        ]
        lines.append(_format_row(kind.value, cells))
    lines.append("")
    lines.append("Consequences in APP (events per minute)")
    lines.append(_format_row("", deployments))
    for kind in ConsequenceKind:
        cells = [
            f"{stats_by_deployment[d].consequence_frequencies_per_min()[kind]:.2f}"
            for d in deployments
        ]
        lines.append(_format_row(_CONSEQUENCE_LABELS[kind], cells))
    return "\n".join(lines)


def render_conditional_table(
    commercial: DominoStats, private: Optional[DominoStats] = None
) -> str:
    """Table 2: P(cause | consequence), commercial vs private cells."""
    lines: List[str] = []
    header = [kind.value for kind in CauseKind] + ["Unknown"]
    lines.append(_format_row("", header))
    tables = [commercial.conditional_probabilities()]
    unknowns = [commercial.unknown_fractions()]
    if private is not None:
        tables.append(private.conditional_probabilities())
        unknowns.append(private.unknown_fractions())
    for consequence in ConsequenceKind:
        cells = []
        for cause in CauseKind:
            values = [f"{t[consequence][cause] * 100:.1f}%" for t in tables]
            cells.append(" / ".join(values))
        cells.append(
            " / ".join(f"{u[consequence] * 100:.1f}%" for u in unknowns)
        )
        lines.append(_format_row(_CONSEQUENCE_LABELS[consequence], cells))
    if private is not None:
        lines.append("(cells: commercial / private)")
    return "\n".join(lines)


def render_chain_ratio_table(
    commercial: DominoStats, private: Optional[DominoStats] = None
) -> str:
    """Table 4: chain ratio given the consequence."""
    lines: List[str] = []
    header = [kind.value for kind in CauseKind]
    lines.append(_format_row("", header))
    tables = [commercial.chain_ratios()]
    if private is not None:
        tables.append(private.chain_ratios())
    for consequence in ConsequenceKind:
        cells = []
        for cause in CauseKind:
            values = [f"{t[consequence][cause] * 100:.1f}%" for t in tables]
            cells.append(" (".join(values) + (")" if len(values) > 1 else ""))
        lines.append(_format_row(_CONSEQUENCE_LABELS[consequence], cells))
    if private is not None:
        lines.append("(cells: commercial (private))")
    return "\n".join(lines)
