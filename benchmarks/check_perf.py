"""CI perf-smoke gate over the scaling benchmark's JSON output.

Reads ``benchmarks/results/BENCH_scaling.json`` (written by
``test_scaling_realtime.py``, which tier-1 already runs) and fails when
the batch feature engine has regressed.  Wall-clock numbers vary >2x
with machine speed and load, so both gates use the *engine speedup* —
the per-window cost of the batch engine relative to the per-window
reference engine measured in the same run — which divides machine and
load effects out:

1. **Floor gate:** the batch engine must stay at least 2x faster per
   window than the reference engine (measured ~11-16x at merge time).
2. **Baseline gate:** when a committed ``BENCH_scaling_baseline.json``
   exists, the current speedup must be at least half the baseline's —
   i.e. a >2x per-window-cost regression of the batch engine fails.
   Refresh the baseline deliberately (copy a fresh, quiet-machine
   ``BENCH_scaling.json`` over it) when an accepted trade-off changes
   the numbers.

Usage: ``python benchmarks/check_perf.py [results_json] [baseline_json]``
"""

import json
import os
import sys

RESULTS = os.path.join(
    os.path.dirname(__file__), "results", "BENCH_scaling.json"
)
BASELINE = os.path.join(
    os.path.dirname(__file__), "results", "BENCH_scaling_baseline.json"
)

#: Absolute floor on the batch engine's per-window advantage.
MIN_ENGINE_SPEEDUP = 2.0

#: Allowed speedup shrinkage vs. the committed baseline (2.0 = fail on
#: a >2x per-window-cost regression of the batch engine).
MAX_SPEEDUP_SHRINKAGE = 2.0


def main(argv):
    results_path = argv[1] if len(argv) > 1 else RESULTS
    baseline_path = argv[2] if len(argv) > 2 else BASELINE
    with open(results_path) as handle:
        results = json.load(handle)

    failures = []
    speedup = results["engines_60s"]["feature_engine_speedup"]
    print(
        f"feature engine speedup (batch vs per-window reference): "
        f"{speedup:.2f}x (floor: >= {MIN_ENGINE_SPEEDUP}x)"
    )
    if speedup < MIN_ENGINE_SPEEDUP:
        failures.append(
            f"batch feature engine regressed: only {speedup:.2f}x faster "
            f"than the reference engine (floor {MIN_ENGINE_SPEEDUP}x)"
        )

    row = next(r for r in results["rows"] if r["trace_s"] == 60)
    print(
        f"60s trace: {row['x_realtime']:.0f}x realtime, "
        f"{row['per_window_cost_s'] * 1e3:.2f} ms/window "
        f"(informational; load-sensitive)"
    )
    phases = results.get("phases_60s", {})
    if phases:
        # Span-derived per-phase breakdown (older BENCH files lack it).
        total_s = sum(phases.values())
        breakdown = ", ".join(
            f"{name} {seconds * 1e3:.1f} ms"
            f" ({100 * seconds / total_s:.0f}%)"
            if total_s
            else f"{name} {seconds * 1e3:.1f} ms"
            for name, seconds in sorted(
                phases.items(), key=lambda kv: -kv[1]
            )
        )
        print(f"60s phase breakdown (informational): {breakdown}")
    if os.path.exists(baseline_path):
        with open(baseline_path) as handle:
            baseline = json.load(handle)
        base_speedup = baseline["engines_60s"]["feature_engine_speedup"]
        floor = base_speedup / MAX_SPEEDUP_SHRINKAGE
        print(
            f"speedup vs baseline: {speedup:.2f}x now, {base_speedup:.2f}x "
            f"at baseline (gate: >= {floor:.2f}x)"
        )
        if speedup < floor:
            failures.append(
                f"batch engine per-window cost regressed more than "
                f"{MAX_SPEEDUP_SHRINKAGE}x vs baseline (speedup fell "
                f"{base_speedup:.2f}x -> {speedup:.2f}x)"
            )
    else:
        print(f"no baseline at {baseline_path}; baseline gate skipped")

    if failures:
        for failure in failures:
            print(f"PERF REGRESSION: {failure}", file=sys.stderr)
        return 1
    print("perf-smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
