"""Campaign execution: serial path, process pool, caching, trace export, IO."""

import glob
import os
import time

import pytest

from repro.core.detector import DetectorConfig
from repro.errors import TelemetryError
from repro.fleet.executor import (
    SessionOutcome,
    detector_config_hash,
    iter_outcomes,
    load_outcomes,
    run_campaign,
    run_scenario,
    save_outcomes,
    scenario_fingerprint,
)
from repro.fleet.scenarios import ImpairmentSpec, ScenarioMatrix, ScenarioSpec
from repro.telemetry.io import load_bundle

#: Small but non-trivial: two cells, one impairment, 8 s sessions (the
#: 5 s detection window needs headroom to emit several positions).
_MATRIX = ScenarioMatrix(
    name="test",
    profiles=("tmobile_fdd", "amarisoft"),
    durations_s=(8.0,),
    impairments=(
        ImpairmentSpec(),
        ImpairmentSpec(name="ul_fade", ul_fades=((2.0, 1.5, 20.0),)),
    ),
)


@pytest.fixture(scope="module")
def serial_outcomes():
    return run_campaign(_MATRIX.expand(), workers=1)


def test_run_scenario_produces_compact_outcome():
    spec = _MATRIX.expand()[0]
    outcome = run_scenario(spec)
    assert outcome.scenario == spec.name
    assert outcome.profile == "tmobile_fdd"
    assert outcome.seed == spec.seed
    assert outcome.duration_s == 8.0
    assert outcome.n_windows > 0
    assert outcome.n_detected_windows <= outcome.n_windows
    assert outcome.event_rates["packets"] > 0
    assert "ul_delay_p50_ms" in outcome.qoe


def test_serial_campaign_preserves_scenario_order(serial_outcomes):
    expected = [s.name for s in _MATRIX.expand()]
    assert [o.scenario for o in serial_outcomes] == expected


def test_parallel_campaign_matches_serial(serial_outcomes):
    parallel = run_campaign(_MATRIX.expand(), workers=2)
    assert parallel == serial_outcomes


def test_workers_must_be_positive():
    with pytest.raises(ValueError):
        run_campaign(_MATRIX.expand(), workers=0)


def test_trace_export_writes_one_shard_per_scenario(tmp_path):
    scenarios = _MATRIX.expand()[:1]
    trace_dir = str(tmp_path / "traces")
    run_campaign(scenarios, workers=1, trace_dir=trace_dir)
    shards = sorted(os.listdir(trace_dir))
    assert len(shards) == 1
    bundle = load_bundle(os.path.join(trace_dir, shards[0]))
    assert bundle.duration_us == scenarios[0].duration_us
    assert len(bundle.packets) > 0


def test_outcomes_round_trip(tmp_path, serial_outcomes):
    path = str(tmp_path / "outcomes.jsonl")
    save_outcomes(serial_outcomes, path)
    loaded = load_outcomes(path)
    assert loaded == list(serial_outcomes)
    assert all(isinstance(o, SessionOutcome) for o in loaded)


def test_truncated_outcomes_rejected(tmp_path, serial_outcomes):
    path = str(tmp_path / "outcomes.jsonl")
    save_outcomes(serial_outcomes, path)
    lines = open(path).readlines()
    with open(path, "w") as handle:
        handle.writelines(lines[:-1])  # drop the last outcome
    with pytest.raises(TelemetryError, match="truncated"):
        load_outcomes(path)


def test_iter_outcomes_streams_one_at_a_time(tmp_path, serial_outcomes):
    path = str(tmp_path / "outcomes.jsonl")
    save_outcomes(serial_outcomes, path)
    iterator = iter_outcomes(path)
    first = next(iterator)
    assert first == serial_outcomes[0]
    assert [first] + list(iterator) == list(serial_outcomes)


def test_iter_outcomes_validates_count_at_exhaustion(
    tmp_path, serial_outcomes
):
    """Truncation is only detectable at the end of a stream; the
    generator yields what exists, then raises."""
    path = str(tmp_path / "outcomes.jsonl")
    save_outcomes(serial_outcomes, path)
    lines = open(path).readlines()
    with open(path, "w") as handle:
        handle.writelines(lines[:-1])
    iterator = iter_outcomes(path)
    yielded = [next(iterator) for _ in range(len(serial_outcomes) - 1)]
    assert yielded == list(serial_outcomes[:-1])
    with pytest.raises(TelemetryError, match="truncated"):
        next(iterator)


def test_tolerant_skips_partial_trailing_line(tmp_path, serial_outcomes):
    """Crash recovery: a killed worker leaves a half-written trailing
    line; tolerant streaming skips it, counts it, and still yields
    every intact outcome (strict mode keeps rejecting the file)."""
    path = str(tmp_path / "outcomes.jsonl")
    save_outcomes(serial_outcomes, path)
    content = open(path).read()
    with open(path, "w") as handle:
        handle.write(content[: len(content) - len(content) // 6])
    with pytest.raises(TelemetryError):
        load_outcomes(path)
    stats = {}
    survived = list(iter_outcomes(path, tolerant=True, stats=stats))
    assert survived == list(serial_outcomes[: len(survived)])
    assert len(survived) < len(serial_outcomes)
    assert stats["skipped_lines"] == 1
    assert stats["missing_outcomes"] == len(serial_outcomes) - len(survived)


def test_tolerant_counts_missing_outcomes(tmp_path, serial_outcomes):
    """A cleanly cut file (whole trailing lines lost) has nothing to
    skip but still reports the header/count shortfall."""
    path = str(tmp_path / "outcomes.jsonl")
    save_outcomes(serial_outcomes, path)
    lines = open(path).readlines()
    with open(path, "w") as handle:
        handle.writelines(lines[:-1])
    stats = {}
    survived = list(iter_outcomes(path, tolerant=True, stats=stats))
    assert survived == list(serial_outcomes[:-1])
    assert stats["skipped_lines"] == 0
    assert stats["missing_outcomes"] == 1


def test_tolerant_still_rejects_wrong_files(tmp_path):
    """Tolerance covers truncation, not wrong-file errors: a headerless
    file is rejected either way."""
    path = str(tmp_path / "not_outcomes.jsonl")
    with open(path, "w") as handle:
        handle.write('{"scenario": "x"}\n')
    with pytest.raises(TelemetryError, match="header"):
        list(iter_outcomes(path, tolerant=True))


def test_concatenated_shards_load_as_one_campaign(
    tmp_path, serial_outcomes
):
    half = len(serial_outcomes) // 2
    shard_a = str(tmp_path / "a.jsonl")
    shard_b = str(tmp_path / "b.jsonl")
    save_outcomes(serial_outcomes[:half], shard_a)
    save_outcomes(serial_outcomes[half:], shard_b)
    joined = str(tmp_path / "all.jsonl")
    with open(joined, "w") as handle:
        handle.write(open(shard_a).read() + open(shard_b).read())
    assert load_outcomes(joined) == list(serial_outcomes)


def test_non_outcome_jsonl_rejected(tmp_path):
    path = str(tmp_path / "other.jsonl")
    with open(path, "w") as handle:
        handle.write('[1, 2, 3]\n')
    with pytest.raises(TelemetryError, match="not a fleet outcomes file"):
        load_outcomes(path)
    with open(path, "w") as handle:
        handle.write('{"type": "header", "session_name": "wired"}\n')
    with pytest.raises(TelemetryError, match="not a fleet outcomes file"):
        load_outcomes(path)


def test_headerless_outcomes_rejected(tmp_path, serial_outcomes):
    path = str(tmp_path / "outcomes.jsonl")
    save_outcomes(serial_outcomes, path)
    lines = open(path).readlines()
    with open(path, "w") as handle:
        handle.writelines(lines[1:])  # drop the header
    with pytest.raises(TelemetryError, match="missing fleet header"):
        load_outcomes(path)


def test_future_format_version_rejected(tmp_path, serial_outcomes):
    path = str(tmp_path / "outcomes.jsonl")
    save_outcomes(serial_outcomes, path)
    lines = open(path).readlines()
    with open(path, "w") as handle:
        handle.write(lines[0].replace('"version": 1', '"version": 99'))
        handle.writelines(lines[1:])
    with pytest.raises(TelemetryError, match="version"):
        load_outcomes(path)


# -- outcome caching -----------------------------------------------------------


def test_cached_rerun_skips_simulation_and_matches(tmp_path):
    spec = _MATRIX.expand()[0]
    cache_dir = str(tmp_path / "cache")
    cold_start = time.perf_counter()
    cold = run_scenario(spec, cache_dir=cache_dir)
    cold_elapsed = time.perf_counter() - cold_start
    entries = glob.glob(os.path.join(cache_dir, "**", "*.json"), recursive=True)
    assert len(entries) == 1
    warm_start = time.perf_counter()
    warm = run_scenario(spec, cache_dir=cache_dir)
    warm_elapsed = time.perf_counter() - warm_start
    assert warm == cold
    assert warm_elapsed < cold_elapsed / 10  # no simulation happened


def test_corrupt_cache_entry_is_resimulated(tmp_path):
    spec = _MATRIX.expand()[0]
    cache_dir = str(tmp_path / "cache")
    cold = run_scenario(spec, cache_dir=cache_dir)
    [entry] = glob.glob(
        os.path.join(cache_dir, "**", "*.json"), recursive=True
    )
    with open(entry, "w") as handle:
        handle.write("{half a json object")
    assert run_scenario(spec, cache_dir=cache_dir) == cold


def test_cache_key_separates_scenarios_and_detector_configs():
    specs = _MATRIX.expand()
    assert scenario_fingerprint(specs[0]) != scenario_fingerprint(specs[1])
    default = detector_config_hash(None)
    assert default == detector_config_hash(DetectorConfig())
    assert default != detector_config_hash(DetectorConfig(window_us=2_000_000))
    # Equivalence-guaranteed execution toggles must share cache entries.
    assert default == detector_config_hash(DetectorConfig(use_batch=False))
    assert default == detector_config_hash(DetectorConfig(use_codegen=False))


def test_campaign_uses_cache_across_workers(tmp_path):
    scenarios = _MATRIX.expand()[:2]
    cache_dir = str(tmp_path / "cache")
    first = run_campaign(scenarios, workers=1, cache_dir=cache_dir)
    entries = glob.glob(os.path.join(cache_dir, "**", "*.json"), recursive=True)
    assert len(entries) == len(scenarios)
    start = time.perf_counter()
    again = run_campaign(scenarios, workers=2, cache_dir=cache_dir)
    elapsed = time.perf_counter() - start
    assert again == first
    assert elapsed < 5.0  # pool spin-up only, no simulation


def test_trace_export_bypasses_cache(tmp_path):
    spec = _MATRIX.expand()[0]
    cache_dir = str(tmp_path / "cache")
    run_scenario(spec, cache_dir=cache_dir)
    trace_dir = str(tmp_path / "traces")
    run_scenario(spec, cache_dir=cache_dir, trace_dir=trace_dir)
    assert len(os.listdir(trace_dir)) == 1  # the bundle was produced


# -- fail-fast cancellation ----------------------------------------------------


def _failing_spec(name: str = "test/failing") -> ScenarioSpec:
    # A baseline profile cannot apply RAN impairments: build_session
    # raises ValueError, giving a deterministic in-worker failure.
    return ScenarioSpec(
        name=name,
        profile="wired",
        seed=0,
        duration_s=8.0,
        impairment=ImpairmentSpec(name="ul_fade", ul_fades=((1.0, 1.0, 10.0),)),
    )


def test_fail_fast_cancels_queued_scenarios():
    scenarios = [_failing_spec()] + _MATRIX.expand()
    start = time.perf_counter()
    with pytest.raises(ValueError, match="RAN knobs"):
        run_campaign(scenarios, workers=2, fail_fast=True)
    elapsed = time.perf_counter() - start
    # Without cancellation all four ~8 s sessions simulate to the end;
    # with it the campaign dies in roughly one worker spin-up.
    assert elapsed < 10.0


def test_serial_campaign_raises_without_fail_fast_flag():
    scenarios = [_failing_spec()] + _MATRIX.expand()[:1]
    with pytest.raises(ValueError, match="RAN knobs"):
        run_campaign(scenarios, workers=1)
