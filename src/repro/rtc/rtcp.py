"""RTCP transport-wide feedback payloads.

The receiver periodically reports, for every media packet it saw (or
gave up waiting for), the arrival timestamp — the input GCC's delay-based
estimator needs.  Feedback packets travel the reverse network path, so
reverse-path delay postpones rate-control reactions (Fig. 21's noted
feedback lag) and inflates outstanding bytes (Fig. 22).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

#: Fixed RTCP header overhead plus per-packet entry size (bytes).
FEEDBACK_BASE_BYTES = 60
FEEDBACK_ENTRY_BYTES = 4


@dataclass(frozen=True)
class FeedbackEntry:
    """One media packet's fate at the receiver."""

    seq: int
    send_us: int
    arrival_us: Optional[int]  # None = declared lost
    size_bytes: int


@dataclass
class FeedbackPayload:
    """Contents of one transport-wide feedback packet.

    ``nacks`` lists media sequence numbers the receiver wants
    retransmitted (WebRTC's NACK/RTX mechanism); the sender re-sends the
    corresponding video packets under fresh sequence numbers.
    """

    entries: List[FeedbackEntry] = field(default_factory=list)
    nacks: List[int] = field(default_factory=list)
    generated_us: int = 0

    @property
    def wire_bytes(self) -> int:
        return (
            FEEDBACK_BASE_BYTES
            + FEEDBACK_ENTRY_BYTES * len(self.entries)
            + 2 * len(self.nacks)
        )

    @property
    def loss_fraction(self) -> float:
        if not self.entries:
            return 0.0
        lost = sum(1 for e in self.entries if e.arrival_us is None)
        return lost / len(self.entries)
