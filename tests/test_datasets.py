"""Cell profiles, the Zoom dataset generator, and session runners."""

import numpy as np
import pytest

from repro.datasets.cells import (
    AMARISOFT,
    CELL_PROFILES,
    MOSOLABS,
    TMOBILE_FDD,
    TMOBILE_TDD,
    get_profile,
)
from repro.datasets.zoom import (
    AccessType,
    ZoomDatasetConfig,
    ZoomDatasetGenerator,
    records_by_access,
)
from repro.phy.cell import Duplex


# -- cell profiles -----------------------------------------------------------------


def test_four_profiles_match_table1():
    assert set(CELL_PROFILES) == {
        "tmobile_fdd",
        "tmobile_tdd",
        "amarisoft",
        "mosolabs",
    }
    assert TMOBILE_FDD.cell.duplex is Duplex.FDD
    assert TMOBILE_FDD.cell.bandwidth_mhz == 15
    assert TMOBILE_TDD.cell.bandwidth_mhz == 100
    assert AMARISOFT.cell.bandwidth_mhz == 20
    assert MOSOLABS.cell.bandwidth_mhz == 20


def test_profile_signatures():
    # Only the FDD commercial cell shows RRC flaps (§5.3).
    assert TMOBILE_FDD.cell.rrc_flap_rate_per_min > 0
    assert TMOBILE_TDD.cell.rrc_flap_rate_per_min == 0
    # Only Amarisoft exposes gNB logs (Table 1).
    assert AMARISOFT.cell.gnb_log_available
    assert not MOSOLABS.cell.gnb_log_available
    # Only Mosolabs uses proactive grants (Fig. 16).
    assert MOSOLABS.cell.proactive_grant_bytes > 0
    assert AMARISOFT.cell.proactive_grant_bytes == 0
    # Amarisoft: poor UL channel + conservative MCS (§3).
    assert AMARISOFT.ul_channel.base_sinr_db < 12
    assert AMARISOFT.ul_channel.conservative_mcs_offset > 0


def test_get_profile_errors():
    assert get_profile("amarisoft") is AMARISOFT
    with pytest.raises(KeyError):
        get_profile("nonexistent")


def test_with_overrides():
    modified = AMARISOFT.with_overrides(harq_max_retx=2)
    assert modified.cell.harq_max_retx == 2
    assert AMARISOFT.cell.harq_max_retx == 4  # original untouched


# -- zoom dataset -------------------------------------------------------------------


def test_zoom_dataset_volumes():
    config = ZoomDatasetConfig(
        wifi_minutes=100, wired_minutes=50, cellular_minutes=30, seed=1
    )
    records = ZoomDatasetGenerator(config).generate()
    grouped = records_by_access(records)
    assert len(grouped[AccessType.WIFI]) == 100
    assert len(grouped[AccessType.WIRED]) == 50
    assert len(grouped[AccessType.CELLULAR]) == 30


def test_zoom_dataset_orderings():
    """Fig. 5/6: cellular jitter and loss dominate Wi-Fi and wired."""
    records = ZoomDatasetGenerator(ZoomDatasetConfig(seed=3)).generate()
    grouped = records_by_access(records)

    def median(access, attr):
        return float(
            np.median([getattr(r, attr) for r in grouped[access]])
        )

    for attr in ("inbound_jitter_ms", "outbound_jitter_ms"):
        assert median(AccessType.CELLULAR, attr) > median(AccessType.WIFI, attr)
        assert median(AccessType.WIFI, attr) > median(AccessType.WIRED, attr)
    for attr in ("inbound_loss_pct", "outbound_loss_pct"):
        assert median(AccessType.CELLULAR, attr) > median(AccessType.WIRED, attr)


def test_zoom_dataset_deterministic():
    a = ZoomDatasetGenerator(ZoomDatasetConfig(seed=5)).generate()
    b = ZoomDatasetGenerator(ZoomDatasetConfig(seed=5)).generate()
    assert a == b


def test_zoom_loss_bounded():
    records = ZoomDatasetGenerator(ZoomDatasetConfig(seed=5)).generate()
    assert all(0 <= r.inbound_loss_pct <= 100 for r in records)
    assert all(0 <= r.outbound_loss_pct <= 100 for r in records)


# -- session runners (uses the cached session fixtures) --------------------------------


def test_cellular_bundle_has_all_sources(cellular_bundle):
    assert len(cellular_bundle.dci) > 100
    assert len(cellular_bundle.packets) > 1_000
    assert len(cellular_bundle.webrtc_stats) > 100
    assert cellular_bundle.gnb_log == []  # commercial: no gNB log


def test_private_bundle_has_gnb_log(private_bundle):
    assert private_bundle.gnb_log_available
    assert len(private_bundle.gnb_log) > 0


def test_cellular_delay_dominates_wired(cellular_bundle, wired_bundle):
    """Fig. 2's headline: 5G inflates one-way delay vs wired."""

    def median_delay(bundle, uplink):
        delays = [
            p.delay_us
            for p in bundle.packets
            if p.is_uplink == uplink and p.received_us is not None
        ]
        return np.median(delays)

    assert median_delay(cellular_bundle, True) > median_delay(wired_bundle, True)


def test_ul_delay_exceeds_dl(cellular_bundle):
    """Fig. 8a-d: UL delay dominates DL on cellular."""

    def median_delay(uplink):
        return np.median(
            [
                p.delay_us
                for p in cellular_bundle.packets
                if p.is_uplink == uplink and p.received_us is not None
            ]
        )

    assert median_delay(True) > median_delay(False)
