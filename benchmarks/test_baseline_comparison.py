"""Baselines vs Domino: what causal-chain analysis adds.

Compares on the same commercial-cell telemetry:
* app-only monitoring — sees consequences, resolves one cause bucket;
* lag-correlation RCA — structure-free attribution;
* single-layer alerting — raw alarm volume without consolidation;
* Domino — consequence-anchored chains down to six cause families.
"""

from conftest import save_result

from repro.analysis.ascii import render_table
from repro.baselines.app_only import AppOnlyDetector
from repro.baselines.correlation import CorrelationRca
from repro.baselines.single_layer import SingleLayerAlerts
from repro.core.detector import DominoDetector
from repro.core.stats import DominoStats


def test_baseline_comparison(benchmark, fdd_results):
    bundle = fdd_results[0].bundle

    def build():
        domino_report = DominoDetector().analyze(bundle)
        domino_stats = DominoStats.from_report(domino_report)
        app_only = AppOnlyDetector().analyze(bundle)
        correlation = CorrelationRca().analyze(bundle)
        alerts = SingleLayerAlerts().analyze(bundle)
        return domino_report, domino_stats, app_only, correlation, alerts

    domino_report, domino_stats, app_only, correlation, alerts = (
        benchmark.pedantic(build, rounds=1, iterations=1)
    )

    domino_consequence_windows = sum(
        1 for w in domino_report.windows if w.consequences
    )
    domino_explained = sum(
        1 for w in domino_report.windows if w.chain_ids
    )
    domino_cause_kinds = len(
        {
            kind
            for kind, share in domino_stats.cause_attribution_shares().items()
            if share > 0
        }
    )
    rows = [
        [
            "Domino",
            float(domino_consequence_windows),
            float(domino_explained),
            float(domino_cause_kinds),
        ],
        [
            "app-only",
            float(app_only.consequence_windows()),
            float(app_only.attributed_windows()),
            float(app_only.root_cause_resolution()),
        ],
        [
            "correlation RCA",
            float(len(correlation)),
            float(sum(1 for r in correlation if abs(r.top_correlation) > 0.3)),
            float(len({r.top_cause for r in correlation})),
        ],
        [
            "single-layer alerts",
            float(alerts.total_alerts),
            0.0,
            0.0,
        ],
    ]
    text = render_table(
        ["method", "signals", "attributed", "cause resolution"], rows
    )
    reduction = alerts.reduction_vs(domino_report)
    save_result(
        "baseline_comparison",
        text
        + f"\nalert volume: {alerts.total_alerts} raw alerts vs "
        f"{sum(len(w.chain_ids) for w in domino_report.windows)} Domino chain "
        f"detections (x{reduction:.1f} consolidation)",
    )

    # Domino distinguishes multiple cause families; app-only cannot.
    assert domino_cause_kinds > app_only.root_cause_resolution()
    # Both see a similar consequence footprint (same app-layer events).
    assert domino_consequence_windows >= app_only.consequence_windows() * 0.5
    # Uncorrelated alerting produces far more signals than Domino's
    # consolidated chains.
    assert alerts.total_alerts > domino_explained
