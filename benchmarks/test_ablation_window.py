"""Ablation: Domino's sliding-window length W and step Δt.

The paper fixes W = 5 s and Δt = 0.5 s (§4.2).  This sweep shows the
design trade-off: short windows miss cause→consequence co-occurrence
(the chain needs both inside one window), long windows blur distinct
events together; a finer step raises time resolution at linear cost.
"""

from conftest import save_result

from repro.analysis.ascii import render_table
from repro.core.detector import DetectorConfig, DominoDetector

WINDOWS_S = (2.0, 5.0, 10.0)
STEPS_S = (0.25, 0.5, 1.0)


def test_ablation_window_and_step(benchmark, fdd_results):
    bundle = fdd_results[0].bundle

    def build():
        rows = []
        for window_s in WINDOWS_S:
            for step_s in STEPS_S:
                detector = DominoDetector(
                    DetectorConfig(
                        window_us=int(window_s * 1e6),
                        step_us=int(step_s * 1e6),
                    )
                )
                report = detector.analyze(bundle)
                detections = sum(len(w.chain_ids) for w in report.windows)
                explained = sum(
                    1 for w in report.windows if w.chain_ids
                )
                rows.append(
                    [
                        f"W={window_s:.2g}s dt={step_s:.2g}s",
                        float(report.n_windows),
                        float(detections),
                        float(explained),
                    ]
                )
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    text = render_table(
        ["configuration", "windows", "chain hits", "hit windows"], rows
    )
    save_result("ablation_window", text)

    by_config = {row[0]: row for row in rows}
    # Smaller step -> more window positions.
    assert (
        by_config["W=5s dt=0.25s"][1] > by_config["W=5s dt=1s"][1]
    )
    # Longer windows catch at least as many chain co-occurrences per
    # window position (more data in each window).
    w2 = by_config["W=2s dt=0.5s"]
    w10 = by_config["W=10s dt=0.5s"]
    assert w10[2] / max(w10[1], 1) >= w2[2] / max(w2[1], 1)
