#!/usr/bin/env python3
"""CI gate for the observability layer (exit 1 on any failure).

Three end-to-end assertions nothing unit-sized can cover:

1. **Exposition is truthful.** A short fleet campaign run through the
   real CLI with ``--metrics-file`` must leave a Prometheus snapshot
   whose ``repro_scenarios_completed_total`` and
   ``repro_windows_analyzed_total`` equal the counts recovered from
   the campaign's own outcomes file.
2. **Instrumentation is inert.** Detections from the same trace must
   be byte-identical (via ``canonical_detections``) with obs fully
   disabled vs. enabled with a JSONL event sink attached — and the
   event file must parse back through the schema codec.
3. **Always-on is affordable.** With spans enabled but no sink
   installed, a full analyze pass must stay within 2% (plus a small
   absolute epsilon for timer noise) of a run with obs disabled —
   min-of-N, interleaved, so machine noise hits both arms equally.

Run from the repository root: ``PYTHONPATH=src python
tools/obs_smoke.py``.
"""

import sys
import tempfile
import time

from repro import api, obs
from repro.cli import main as cli_main
from repro.datasets import TMOBILE_FDD, run_cellular_session
from repro.fleet.executor import load_outcomes
from repro.live.service import canonical_detections

#: Relative overhead allowed for enabled-but-sinkless instrumentation.
OVERHEAD_LIMIT = 1.02

#: Absolute slack (seconds) so timer jitter cannot fail a fast run.
OVERHEAD_EPSILON_S = 0.005

#: Interleaved timing rounds per arm; min-of-N defeats one-off stalls.
TIMING_ROUNDS = 9


def check_exposition(tmp: str) -> list:
    metrics_path = f"{tmp}/metrics.prom"
    outcomes_path = f"{tmp}/outcomes.jsonl"
    obs.get_registry().reset()
    status = cli_main(
        [
            "--metrics-file",
            metrics_path,
            "fleet",
            "--preset",
            "smoke",
            "--workers",
            "2",
            "--no-cache",
            "--out",
            outcomes_path,
        ]
    )
    if status != 0:
        return [f"fleet smoke campaign exited {status}"]
    outcomes = load_outcomes(outcomes_path)
    with open(metrics_path) as fh:
        parsed = obs.parse_prom(fh.read())
    failures = []
    got_scenarios = parsed.get("repro_scenarios_completed_total")
    if got_scenarios != float(len(outcomes)):
        failures.append(
            f"repro_scenarios_completed_total={got_scenarios} but the "
            f"outcomes file holds {len(outcomes)} outcomes"
        )
    want_windows = float(sum(o.n_windows for o in outcomes))
    got_windows = parsed.get("repro_windows_analyzed_total")
    if got_windows != want_windows:
        failures.append(
            f"repro_windows_analyzed_total={got_windows} but outcomes "
            f"sum to {want_windows} windows"
        )
    return failures


def check_byte_identity(bundle, tmp: str) -> list:
    events_path = f"{tmp}/events.jsonl"
    obs.disable()
    try:
        baseline = canonical_detections(api.analyze(bundle).windows)
    finally:
        obs.enable()
    sink = obs.JsonlSink(events_path)
    previous = obs.set_sink(sink)
    try:
        instrumented = canonical_detections(api.analyze(bundle).windows)
    finally:
        obs.set_sink(previous)
        sink.close()
    failures = []
    if instrumented != baseline:
        failures.append(
            "detections differ with instrumentation on vs off"
        )
    events = list(obs.iter_events(events_path))
    if not events:
        failures.append("instrumented analyze emitted no span events")
    return failures


def check_overhead(bundle) -> list:
    obs.set_sink(None)

    def once_enabled() -> float:
        obs.enable()
        start = time.perf_counter()
        api.analyze(bundle)
        return time.perf_counter() - start

    def once_disabled() -> float:
        obs.disable()
        try:
            start = time.perf_counter()
            api.analyze(bundle)
            return time.perf_counter() - start
        finally:
            obs.enable()

    once_enabled(), once_disabled()  # warm both paths
    enabled_s = disabled_s = float("inf")
    for _ in range(TIMING_ROUNDS):
        enabled_s = min(enabled_s, once_enabled())
        disabled_s = min(disabled_s, once_disabled())
    budget_s = disabled_s * OVERHEAD_LIMIT + OVERHEAD_EPSILON_S
    print(
        f"overhead: enabled {enabled_s * 1e3:.1f} ms vs disabled "
        f"{disabled_s * 1e3:.1f} ms (budget {budget_s * 1e3:.1f} ms)"
    )
    if enabled_s > budget_s:
        return [
            f"sinkless instrumentation costs {enabled_s * 1e3:.1f} ms "
            f"vs {disabled_s * 1e3:.1f} ms disabled — over the "
            f"{OVERHEAD_LIMIT:.0%}+{OVERHEAD_EPSILON_S * 1e3:.0f} ms "
            f"budget"
        ]
    return []


def main() -> int:
    failures = []
    with tempfile.TemporaryDirectory() as tmp:
        failures += check_exposition(tmp)
        bundle = run_cellular_session(
            TMOBILE_FDD, duration_s=30, seed=7
        ).bundle
        failures += check_byte_identity(bundle, tmp)
        failures += check_overhead(bundle)
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("obs smoke: exposition, byte-identity, and overhead all OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
