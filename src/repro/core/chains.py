"""The 24 canonical causal chains of §4.2.

Fig. 9 connects six 5G root causes to three application consequences.
Enumerating the distinct DAG paths gives 24 canonical chains: each cause
reaches

* the *jitter-buffer drain* of the receiver of the stream riding the
  affected direction (via forward-path delay),
* the *target-bitrate reduction* of that stream's sender (forward delay
  → GCC overuse),
* that sender's *pushback-rate reduction* (forward delay → outstanding
  bytes), and
* the *other* stream's pushback-rate reduction — its RTCP feedback rides
  the affected direction (reverse-path delay, Fig. 22),

i.e. 6 causes × 4 paths = 24.  Concretely each canonical chain
instantiates as up to two direction-resolved chains (UL and DL variants);
statistics aggregate back to the canonical (cause kind, consequence kind)
cells that Fig. 10 and Tables 2/4 report.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional, Tuple


class CauseKind(enum.Enum):
    """The six root-cause families of Fig. 9 (yellow blocks)."""

    POOR_CHANNEL = "Poor Channel"
    CROSS_TRAFFIC = "Cross Traffic"
    UL_SCHEDULING = "UL Scheduling"
    HARQ_RETX = "HARQ ReTX"
    RLC_RETX = "RLC ReTX"
    RRC_STATE = "RRC State"


class ConsequenceKind(enum.Enum):
    """The three consequence families (red blocks)."""

    JITTER_BUFFER_DRAIN = "Jitter Buffer Drains"
    TARGET_BITRATE_DOWN = "Target Bitrate Down"
    PUSHBACK_RATE_DOWN = "Pushback Rate Down"


class PathKind(enum.Enum):
    """How the cause reaches the consequence."""

    FORWARD = "forward"  # via the media path's delay
    REVERSE = "reverse"  # via the feedback path's delay (pushback only)


#: Feature-name fragment for each cause family, per direction.
_CAUSE_FEATURES: Dict[CauseKind, str] = {
    CauseKind.POOR_CHANNEL: "channel_degrades",
    CauseKind.CROSS_TRAFFIC: "cross_traffic",
    CauseKind.HARQ_RETX: "harq_retx",
    CauseKind.RLC_RETX: "rlc_retx",
}


def cause_feature(kind: CauseKind, direction: str) -> str:
    """Feature name for a cause family in a given direction."""
    if kind is CauseKind.UL_SCHEDULING:
        return "ul_scheduling"
    if kind is CauseKind.RRC_STATE:
        return "rrc_change"
    return f"{direction}_{_CAUSE_FEATURES[kind]}"


def classify_cause(feature: str) -> Optional[CauseKind]:
    """Map a feature name back to its cause family (None if not a cause)."""
    if feature == "ul_scheduling":
        return CauseKind.UL_SCHEDULING
    if feature == "rrc_change":
        return CauseKind.RRC_STATE
    for kind, fragment in _CAUSE_FEATURES.items():
        if feature.endswith(fragment):
            return kind
    return None


def classify_consequence(feature: str) -> Optional[ConsequenceKind]:
    """Map a feature name to its consequence family (None otherwise)."""
    if feature.endswith("jitter_buffer_drain"):
        return ConsequenceKind.JITTER_BUFFER_DRAIN
    if feature.endswith("target_bitrate_down"):
        return ConsequenceKind.TARGET_BITRATE_DOWN
    if feature.endswith("pushback_rate_down"):
        return ConsequenceKind.PUSHBACK_RATE_DOWN
    return None


#: Canonical chain identifiers: (cause kind, consequence kind, path kind)
#: → id 1..24.  Pushback has both a forward and a reverse path; the other
#: consequences only a forward one.
CANONICAL_CHAINS: Dict[Tuple[CauseKind, ConsequenceKind, PathKind], int] = {}
_next_id = 1
for _cause in CauseKind:
    for _consequence, _paths in (
        (ConsequenceKind.JITTER_BUFFER_DRAIN, (PathKind.FORWARD,)),
        (ConsequenceKind.TARGET_BITRATE_DOWN, (PathKind.FORWARD,)),
        (
            ConsequenceKind.PUSHBACK_RATE_DOWN,
            (PathKind.FORWARD, PathKind.REVERSE),
        ),
    ):
        for _path in _paths:
            CANONICAL_CHAINS[(_cause, _consequence, _path)] = _next_id
            _next_id += 1
assert len(CANONICAL_CHAINS) == 24, "§4.2 defines 24 causal chains"


def canonical_id(
    cause: CauseKind, consequence: ConsequenceKind, path: PathKind
) -> int:
    """Canonical chain id (1..24) for the given combination."""
    return CANONICAL_CHAINS[(cause, consequence, path)]


def _direction_chains(direction: str) -> List[str]:
    """Concrete chain lines for causes affecting *direction*.

    For an UL cause: the stream riding UL is sent by the local (cellular)
    client and received by the remote one; the remote client's outbound
    stream has its feedback riding UL.
    """
    if direction == "ul":
        sender, receiver = "local", "remote"
    else:
        sender, receiver = "remote", "local"
    delay = f"{direction}_delay_up"
    lines = []
    cause_kinds = [
        CauseKind.POOR_CHANNEL,
        CauseKind.CROSS_TRAFFIC,
        CauseKind.HARQ_RETX,
        CauseKind.RLC_RETX,
    ]
    if direction == "ul":
        cause_kinds.insert(2, CauseKind.UL_SCHEDULING)
    cause_kinds.append(CauseKind.RRC_STATE)
    for kind in cause_kinds:
        cause = cause_feature(kind, direction)
        lines.append(
            f"{cause} --> {delay} --> {receiver}_jitter_buffer_drain"
        )
        lines.append(
            f"{cause} --> {delay} --> {sender}_gcc_overuse "
            f"--> {sender}_target_bitrate_down"
        )
        lines.append(
            f"{cause} --> {delay} --> {sender}_outstanding_bytes_up "
            f"--> {sender}_pushback_rate_down"
        )
        lines.append(
            f"{cause} --> {delay} --> {receiver}_outstanding_bytes_up "
            f"--> {receiver}_pushback_rate_down"
        )
    return lines


def default_chains_text() -> str:
    """The full direction-resolved default chain configuration."""
    header = (
        "# Default Domino causal chains (Fig. 9), direction-resolved.\n"
        "# 6 cause families x 4 paths = 24 canonical chains; UL and DL\n"
        "# variants instantiate them concretely.\n"
    )
    return header + "\n".join(_direction_chains("ul") + _direction_chains("dl"))


DEFAULT_CHAINS_TEXT = default_chains_text()


def chain_path_kind(chain: Tuple[str, ...]) -> PathKind:
    """Forward or reverse path of a concrete chain.

    The chain's delay node direction versus the consequence's stream
    direction decides: a pushback consequence whose sender's media rides
    the *other* direction was reached via its feedback path (reverse).
    """
    delay_direction = None
    for node in chain:
        if node.endswith("_delay_up"):
            delay_direction = node.split("_", 1)[0]
            break
    consequence = chain[-1]
    kind = classify_consequence(consequence)
    if kind is not ConsequenceKind.PUSHBACK_RATE_DOWN or delay_direction is None:
        return PathKind.FORWARD
    sender_role = consequence.split("_", 1)[0]  # local / remote
    media_direction = "ul" if sender_role == "local" else "dl"
    return (
        PathKind.FORWARD
        if delay_direction == media_direction
        else PathKind.REVERSE
    )


def canonical_id_for_chain(chain: Tuple[str, ...]) -> Optional[int]:
    """Canonical id (1..24) of a concrete chain, or None if unmapped."""
    cause = classify_cause(chain[0])
    consequence = classify_consequence(chain[-1])
    if cause is None or consequence is None:
        return None
    return CANONICAL_CHAINS.get((cause, consequence, chain_path_kind(chain)))
