"""Receiver side of a WebRTC client.

Feeds arriving media into the jitter buffers, measures inbound quality
(frame rate, freezes, concealment), performs gap-based loss detection,
and assembles transport-wide feedback payloads for the remote sender's
congestion controller.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.net.packet import Packet
from repro.rtc.jitter_buffer import AudioJitterBuffer, VideoJitterBuffer
from repro.rtc.rtcp import FeedbackEntry, FeedbackPayload
from repro.telemetry.records import StreamKind

#: How long a sequence gap may stay open before the missing packet is
#: declared lost in feedback (reordering tolerance).
LOSS_DEADLINE_US = 150_000

#: Gap age after which a NACK is issued, and the retry budget per seq.
NACK_AGE_US = 20_000
MAX_NACKS_PER_SEQ = 2


@dataclass
class _PendingEntry:
    seq: int
    send_us: int
    arrival_us: Optional[int]
    size_bytes: int


@dataclass
class MediaReceiver:
    """Inbound media processing for one client."""

    video: VideoJitterBuffer = field(default_factory=VideoJitterBuffer)
    audio: AudioJitterBuffer = field(default_factory=AudioJitterBuffer)

    _pending_feedback: List[_PendingEntry] = field(default_factory=list)
    _highest_seq: Optional[int] = None
    _seen: Dict[int, int] = field(default_factory=dict)  # seq -> arrival
    _gap_deadlines: Dict[int, int] = field(default_factory=dict)
    _gap_opened_us: Dict[int, int] = field(default_factory=dict)
    _nack_counts: Dict[int, int] = field(default_factory=dict)
    _last_send_us: Dict[int, int] = field(default_factory=dict)
    total_received: int = 0
    total_lost_declared: int = 0
    total_nacks_sent: int = 0

    def on_packet(self, packet: Packet, arrival_us: int) -> None:
        """Process one arriving media packet."""
        self.total_received += 1
        if packet.stream is StreamKind.VIDEO and packet.frame_id is not None:
            self.video.on_packet(
                frame_id=packet.frame_id,
                capture_us=packet.capture_us or packet.sent_us,
                packets_in_frame=packet.packets_in_frame,
                resolution_p=packet.resolution_p,
                arrival_us=arrival_us,
            )
        elif packet.stream is StreamKind.AUDIO and packet.audio_seq is not None:
            self.audio.on_packet(
                audio_seq=packet.audio_seq,
                capture_us=packet.capture_us or packet.sent_us,
                arrival_us=arrival_us,
            )
        if packet.media_seq is None:
            return
        seq = packet.media_seq
        self._pending_feedback.append(
            _PendingEntry(
                seq=seq,
                send_us=packet.sent_us,
                arrival_us=arrival_us,
                size_bytes=packet.size_bytes,
            )
        )
        self._seen[seq] = arrival_us
        self._gap_deadlines.pop(seq, None)
        self._last_send_us[seq] = packet.sent_us
        if self._highest_seq is None:
            self._highest_seq = seq
            return
        if seq > self._highest_seq:
            # Open gap deadlines for every sequence number we skipped.
            for missing in range(self._highest_seq + 1, seq):
                if missing not in self._seen:
                    self._gap_deadlines.setdefault(
                        missing, arrival_us + LOSS_DEADLINE_US
                    )
                    self._gap_opened_us.setdefault(missing, arrival_us)
            self._highest_seq = seq

    def step(self, now_us: int) -> None:
        """Advance playout clocks."""
        self.video.step(now_us)
        self.audio.step(now_us)

    def build_feedback(self, now_us: int) -> Optional[FeedbackPayload]:
        """Drain pending acks + expired gaps into one feedback payload."""
        entries: List[FeedbackEntry] = []
        for pending in self._pending_feedback:
            entries.append(
                FeedbackEntry(
                    seq=pending.seq,
                    send_us=pending.send_us,
                    arrival_us=pending.arrival_us,
                    size_bytes=pending.size_bytes,
                )
            )
        self._pending_feedback = []
        expired = [
            seq
            for seq, deadline in self._gap_deadlines.items()
            if deadline <= now_us
        ]
        for seq in expired:
            del self._gap_deadlines[seq]
            self._gap_opened_us.pop(seq, None)
            self._nack_counts.pop(seq, None)
            if seq in self._seen:
                continue
            self.total_lost_declared += 1
            # Estimate the send time from neighbours for GCC's bookkeeping.
            send_estimate = self._estimate_send_us(seq)
            entries.append(
                FeedbackEntry(
                    seq=seq,
                    send_us=send_estimate,
                    arrival_us=None,
                    size_bytes=1_000,
                )
            )
        nacks: List[int] = []
        for seq, opened_us in list(self._gap_opened_us.items()):
            if seq in self._seen or seq not in self._gap_deadlines:
                del self._gap_opened_us[seq]
                self._nack_counts.pop(seq, None)
                continue
            if now_us - opened_us < NACK_AGE_US:
                continue
            count = self._nack_counts.get(seq, 0)
            if count >= MAX_NACKS_PER_SEQ:
                continue
            self._nack_counts[seq] = count + 1
            self.total_nacks_sent += 1
            nacks.append(seq)
        if not entries and not nacks:
            return None
        entries.sort(key=lambda e: e.seq)
        return FeedbackPayload(
            entries=entries, nacks=nacks, generated_us=now_us
        )

    def _estimate_send_us(self, seq: int) -> int:
        for neighbour in (seq - 1, seq + 1, seq - 2, seq + 2):
            if neighbour in self._last_send_us:
                return self._last_send_us[neighbour]
        return 0

    # -- inbound stats ------------------------------------------------------------

    def inbound_fps(self, now_us: int) -> float:
        return self.video.fps_over(now_us)

    def inbound_resolution(self) -> int:
        return self.video.last_resolution()
