"""HARQ entity: retransmission scheduling, retry limits, statistics."""

from hypothesis import given, strategies as st

from repro.mac.harq import HarqEntity, HarqOutcome, TransportBlock


def _tb(tb_id=0, slot=0):
    return TransportBlock(
        tb_id=tb_id,
        slot=slot,
        n_prb=10,
        mcs=10,
        tbs_bits=8000,
        ranges=[(0, 1000)],
    )


def _drain(entity, max_slot=10_000):
    """Poll slot by slot until all TBs resolve; returns resolutions."""
    out = []
    slot = 0
    while entity.pending_count() and slot < max_slot:
        out.extend(entity.poll(slot))
        slot += 1
    return out


def test_perfect_channel_decodes_first_attempt():
    entity = HarqEntity(rtt_slots=20, max_retx=4, seed=1)
    entity.submit(_tb(), bler=0.0)
    resolutions = _drain(entity)
    assert len(resolutions) == 1
    assert resolutions[0].outcome is HarqOutcome.DECODED
    assert resolutions[0].attempt == 0
    assert resolutions[0].slot == 1  # decode_delay_slots default


def test_hopeless_channel_exhausts_retries():
    entity = HarqEntity(
        rtt_slots=20, max_retx=4, seed=1, bler_fn=lambda tb, attempt: 1.0
    )
    entity.submit(_tb(), bler=1.0)
    resolutions = _drain(entity)
    outcomes = [r.outcome for r in resolutions]
    assert outcomes == [HarqOutcome.RETRANSMIT] * 4 + [HarqOutcome.FAILED]
    assert entity.total_failures == 1
    assert entity.total_retransmissions == 4


def test_retx_timing_respects_rtt():
    entity = HarqEntity(
        rtt_slots=20, max_retx=4, seed=1, bler_fn=lambda tb, attempt: 1.0
    )
    entity.submit(_tb(slot=0), bler=1.0)
    slots = [r.slot for r in _drain(entity)]
    # First resolution at slot 1 (decode delay), then every rtt_slots.
    assert slots == [1, 21, 41, 61, 81]


def test_soft_combining_reduces_failures():
    # With default combining, BLER 0.5 should almost always decode
    # within the retry budget.
    entity = HarqEntity(rtt_slots=5, max_retx=4, seed=3)
    for i in range(200):
        entity.submit(_tb(tb_id=i, slot=i * 30), bler=0.5)
    slot = 0
    while entity.pending_count():
        entity.poll(slot)
        slot += 1
    assert entity.total_failures < 10  # p(5 consecutive fails) is tiny


@given(seed=st.integers(min_value=0, max_value=1_000))
def test_attempts_never_exceed_budget(seed):
    entity = HarqEntity(rtt_slots=3, max_retx=2, seed=seed)
    for i in range(20):
        entity.submit(_tb(tb_id=i, slot=i), bler=0.9)
    resolutions = _drain(entity)
    assert all(r.attempt <= 2 for r in resolutions)
    decoded = sum(1 for r in resolutions if r.outcome is HarqOutcome.DECODED)
    failed = sum(1 for r in resolutions if r.outcome is HarqOutcome.FAILED)
    assert decoded + failed == 20  # every TB reaches a terminal state


def test_deterministic_per_seed():
    def run(seed):
        entity = HarqEntity(rtt_slots=3, max_retx=4, seed=seed)
        for i in range(50):
            entity.submit(_tb(tb_id=i, slot=i), bler=0.3)
        return [
            (r.tb.tb_id, r.outcome, r.slot) for r in _drain(entity)
        ]

    assert run(7) == run(7)
    assert run(7) != run(8)
