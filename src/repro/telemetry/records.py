"""Telemetry record schemas for all four data sources of Table 1.

These mirror what the paper collects:

* :class:`DciRecord` — one row per decoded DCI / transport block, the
  NR-Scope output: slot timing, RNTI, PRBs, MCS, TBS, retransmission
  flags.  Cross-traffic UEs appear under their own RNTIs, which is how
  Domino's cross-traffic condition (Table 5, row 15) works.
* :class:`GnbLogRecord` — base-station log lines: RLC buffer occupancy,
  RLC retransmissions, RRC state changes.  Only private cells expose
  these (Amarisoft in the paper).
* :class:`PacketRecord` — network-layer packet trace entries joined
  across both capture points, giving one-way delay per packet.
* :class:`WebRtcStatsRecord` — the instrumented client's 50 ms stats:
  frame rate, resolution, jitter-buffer state, GCC internals (network
  state, target bitrate, pushback rate, congestion window, outstanding
  bytes), freeze/concealment counters.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional


class StreamKind(enum.Enum):
    """Media stream classification of a packet."""

    VIDEO = "video"
    AUDIO = "audio"
    RTCP = "rtcp"


@dataclass(frozen=True)
class DciRecord:
    """One decoded scheduling grant / transport block (NR-Scope style)."""

    ts_us: int
    slot: int
    rnti: int
    is_uplink: bool
    n_prb: int
    mcs: int
    tbs_bits: int
    is_retx: bool = False
    harq_attempt: int = 0
    crc_ok: bool = True
    proactive: bool = False
    used_bytes: int = 0

    @property
    def tbs_bytes(self) -> int:
        return self.tbs_bits // 8

    @property
    def wasted_bytes(self) -> int:
        """Granted capacity that carried no data (Fig. 16's unfilled bars)."""
        return max(0, self.tbs_bytes - self.used_bytes)


class GnbLogKind(enum.Enum):
    """gNB log entry types."""

    RLC_BUFFER = "rlc_buffer"
    RLC_RETX = "rlc_retx"
    RRC_RELEASE = "rrc_release"
    RRC_CONNECT = "rrc_connect"


@dataclass(frozen=True)
class GnbLogRecord:
    """One gNB log line (private cells only)."""

    ts_us: int
    kind: GnbLogKind
    is_uplink: bool = False
    buffer_bytes: int = 0
    rnti: int = 0


@dataclass
class PacketRecord:
    """One packet joined across sender- and receiver-side captures."""

    packet_id: int
    stream: StreamKind
    size_bytes: int
    sent_us: int
    received_us: Optional[int] = None  # None = lost
    is_uplink: bool = False  # direction relative to the cellular client
    frame_id: Optional[int] = None  # video frame this packet belongs to

    @property
    def delay_us(self) -> Optional[int]:
        if self.received_us is None:
            return None
        return self.received_us - self.sent_us

    @property
    def lost(self) -> bool:
        return self.received_us is None


@dataclass(frozen=True)
class WebRtcStatsRecord:
    """One 50 ms statistics snapshot from the instrumented client.

    ``direction`` semantics follow the paper: each client reports stats
    about the stream it *sends* (outbound: target/pushback rate, encoder
    resolution) and the stream it *receives* (inbound: frame rate,
    jitter-buffer delay, freezes, concealment).
    """

    ts_us: int
    client: str  # "cellular" or "wired" endpoint name
    # Outbound (sender-side) metrics:
    outbound_fps: float = 0.0
    outbound_resolution_p: int = 0  # 180/360/540/720/1080
    target_bitrate_bps: float = 0.0
    pushback_bitrate_bps: float = 0.0
    gcc_state: str = "normal"  # "underuse" | "normal" | "overuse"
    gcc_trend_slope: float = 0.0
    gcc_threshold: float = 0.0
    outstanding_bytes: int = 0
    congestion_window_bytes: int = 0
    # Inbound (receiver-side) metrics:
    inbound_fps: float = 0.0
    inbound_resolution_p: int = 0
    video_jitter_buffer_ms: float = 0.0
    audio_jitter_buffer_ms: float = 0.0
    frozen: bool = False
    freeze_duration_ms: float = 0.0
    concealed_samples: int = 0
    total_samples: int = 0


@dataclass
class TelemetryBundle:
    """All telemetry from one measurement session, time-aligned by ts_us.

    ``cellular_client`` names the endpoint behind the 5G link so feature
    extraction knows which WebRTC stats are "local" (cellular UE) versus
    "remote".  Timestamps share one clock (hosts were NTP-synced in the
    paper; the simulator has a single clock by construction).
    """

    session_name: str
    duration_us: int
    cellular_client: str = "cellular"
    wired_client: str = "wired"
    gnb_log_available: bool = False
    dci: List[DciRecord] = field(default_factory=list)
    gnb_log: List[GnbLogRecord] = field(default_factory=list)
    packets: List[PacketRecord] = field(default_factory=list)
    webrtc_stats: List[WebRtcStatsRecord] = field(default_factory=list)

    def event_rates_per_minute(self) -> dict:
        """Per-minute record rates — the Table 1 'Event Rate' columns."""
        minutes = max(self.duration_us / 60e6, 1e-9)
        return {
            "dci": len(self.dci) / minutes,
            "gnb": len(self.gnb_log) / minutes,
            "packets": len(self.packets) / minutes,
            "webrtc": len(self.webrtc_stats) / minutes,
        }


def record_time_us(record) -> int:
    """Feed-order timestamp of any telemetry record type.

    Packets order by their *send* time (the sender-side capture point
    is where a live tail first sees them); everything else carries a
    plain ``ts_us``.  The one definition shared by streaming detection,
    collector draining, and live replay — so all three order a mixed
    record feed identically.
    """
    if isinstance(record, PacketRecord):
        return record.sent_us
    return record.ts_us
