#!/usr/bin/env python3
"""Distributed campaign over loopback: coordinator + 2 workers.

The fleet executor scales to one machine; `repro.cluster` is the layer
above it — a coordinator dispatching scenarios over TCP to workers that
each run the normal process-pool executor locally.  This demo spins up
the whole topology inside one process (coordinator and both workers on
the loopback interface; the scenario simulations still fan out to real
worker processes), runs the ``smoke`` campaign preset through it, and
then proves the distribution layer is *free of semantics*: the
outcomes are byte-identical to a plain single-host ``run_campaign``.

The same byte-for-byte check doubles as the CI cluster smoke gate, so
the demo exits non-zero on any mismatch.

Usage:
    python examples/cluster_demo.py [--preset smoke] [--workers 2]
"""

import argparse
import asyncio
import json
import sys
import time

from repro import api
from repro.cluster import ClusterCoordinator, ClusterWorker
from repro.fleet.aggregate import FleetAggregate
from repro.fleet.report import render_fleet_report
from repro.fleet.scenarios import get_preset


async def run_cluster(scenarios, n_workers: int):
    coordinator = ClusterCoordinator()  # loopback, ephemeral port
    await coordinator.start()
    print(
        f"coordinator on 127.0.0.1:{coordinator.port}, "
        f"{n_workers} loopback workers joining"
    )
    workers = [
        ClusterWorker("127.0.0.1", coordinator.port, slots=1, name=f"w{i}")
        for i in range(n_workers)
    ]
    tasks = [asyncio.create_task(w.run()) for w in workers]
    try:
        await coordinator.wait_for_workers(n_workers, timeout_s=60)

        def progress(done, total, requeues):
            print(f"  [{done}/{total}] outcomes collected")

        outcomes = await coordinator.run_campaign(
            scenarios, on_progress=progress
        )
    finally:
        await coordinator.close()
        await asyncio.gather(*tasks, return_exceptions=True)
    for worker in workers:
        print(f"  {worker.name}: ran {worker.scenarios_run} scenario(s)")
    return outcomes


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--preset", default="smoke")
    parser.add_argument("--workers", type=int, default=2)
    args = parser.parse_args()

    scenarios = get_preset(args.preset).expand()
    print(f"campaign {args.preset}: {len(scenarios)} scenarios\n")

    t0 = time.time()
    local = api.campaign(
        scenarios, backend=api.ProcessPoolBackend(args.workers)
    )
    print(f"local ({args.workers}-process pool): {time.time() - t0:.1f}s")

    t0 = time.time()
    cluster = asyncio.run(run_cluster(scenarios, args.workers))
    print(f"cluster (loopback): {time.time() - t0:.1f}s\n")

    local_bytes = json.dumps([o.to_json() for o in local], sort_keys=True)
    cluster_bytes = json.dumps(
        [o.to_json() for o in cluster], sort_keys=True
    )
    identical = local_bytes == cluster_bytes
    print(f"cluster outcomes byte-identical to local: {identical}")
    if not identical:
        print("MISMATCH — the dispatch layer changed results", file=sys.stderr)
        return 1
    print()
    print(render_fleet_report(FleetAggregate.from_outcomes(cluster)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
