"""Two-party WebRTC call session (the paper's Fig. 7 topology).

Client A sits behind an access network (cellular → the RAN simulator, or
wired/Wi-Fi → a stochastic delay pipe); client B is the far endpoint
(a GCP server over wired access in the paper).  Both send media and
feedback through:

    A ──access_a.up──▶ internet(a→b) ──access_b.down──▶ B
    B ──access_b.up──▶ internet(b→a) ──access_a.down──▶ A

The session owns the clock (stepped at the finest access granularity),
routes packets hop by hop, and writes the packet trace + WebRTC stats
into the shared telemetry collector.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.net.link import AccessLink, InternetSegment
from repro.net.packet import Packet
from repro.rtc.client import ClientConfig, WebRtcClient
from repro.telemetry.collect import TelemetryCollector
from repro.telemetry.records import PacketRecord, TelemetryBundle


@dataclass
class SessionResult:
    """Output of one simulated call."""

    bundle: TelemetryBundle
    client_a: WebRtcClient
    client_b: WebRtcClient


class TwoPartySession:
    """Simulates one two-party call and collects all telemetry.

    Args:
        name: session identifier.
        access_a / access_b: the two endpoints' access networks.
        client_a / client_b: client configurations.  Client A is the
            "cellular"/local endpoint for telemetry labelling even when
            its access is wired (baseline runs).
        internet_ab / internet_ba: wide-area segments per direction.
        collector: telemetry sink; a fresh one is created if omitted.
        gnb_log_available: whether gNB logs should be retained.
    """

    def __init__(
        self,
        name: str,
        access_a: AccessLink,
        access_b: AccessLink,
        client_a: ClientConfig,
        client_b: ClientConfig,
        internet_ab: Optional[InternetSegment] = None,
        internet_ba: Optional[InternetSegment] = None,
        collector: Optional[TelemetryCollector] = None,
        gnb_log_available: bool = False,
    ) -> None:
        self.name = name
        self.access_a = access_a
        self.access_b = access_b
        self.internet_ab = internet_ab or InternetSegment(seed=101)
        self.internet_ba = internet_ba or InternetSegment(seed=102)
        self.collector = collector or TelemetryCollector(
            name,
            cellular_client=client_a.name,
            wired_client=client_b.name,
            gnb_log_available=gnb_log_available,
        )
        ids = itertools.count()
        alloc = lambda: next(ids)  # noqa: E731 - tiny shared allocator
        self.client_a = WebRtcClient(client_a, alloc, self.collector)
        self.client_b = WebRtcClient(client_b, alloc, self.collector)
        self._packets: Dict[int, Packet] = {}
        self.step_us = min(access_a.step_us, access_b.step_us)
        self._now_us = 0
        # Deterministic per-step callbacks ``hook(session, now_us)`` —
        # the seam adversarial intervention axes (repro.causal) use to
        # react to in-call state.  Empty for every ordinary session.
        self.tick_hooks: List = []

    # -- plumbing ---------------------------------------------------------------

    def _route_outgoing(self, sender_is_a: bool, packets: List[Packet]) -> None:
        access = self.access_a if sender_is_a else self.access_b
        for packet in packets:
            self._packets[packet.packet_id] = packet
            self.collector.record_packet_sent(
                PacketRecord(
                    packet_id=packet.packet_id,
                    stream=packet.stream,
                    size_bytes=packet.size_bytes,
                    sent_us=packet.sent_us,
                    is_uplink=sender_is_a,
                    frame_id=packet.frame_id,
                )
            )
            access.send_up(packet.packet_id, packet.size_bytes, packet.sent_us)

    def _pump_access(
        self, now_us: int
    ) -> Tuple[List[Tuple[Packet, int]], List[Tuple[Packet, int]]]:
        """Move packets through both accesses; return per-client arrivals."""
        arrivals_a: List[Tuple[Packet, int]] = []
        arrivals_b: List[Tuple[Packet, int]] = []
        for pid, ts, was_up in self.access_a.poll(now_us):
            packet = self._packets.get(pid)
            if packet is None:
                continue
            if was_up:
                self.internet_ab.send(pid, ts)
            else:
                self.collector.record_packet_received(pid, ts)
                arrivals_a.append((packet, ts))
        for pid, ts, was_up in self.access_b.poll(now_us):
            packet = self._packets.get(pid)
            if packet is None:
                continue
            if was_up:
                self.internet_ba.send(pid, ts)
            else:
                self.collector.record_packet_received(pid, ts)
                arrivals_b.append((packet, ts))
        for pid, ts in self.internet_ab.poll(now_us):
            packet = self._packets.get(pid)
            if packet is not None:
                self.access_b.send_down(pid, packet.size_bytes, ts)
        for pid, ts in self.internet_ba.poll(now_us):
            packet = self._packets.get(pid)
            if packet is not None:
                self.access_a.send_down(pid, packet.size_bytes, ts)
        return arrivals_a, arrivals_b

    # -- main loop ------------------------------------------------------------------

    @property
    def now_us(self) -> int:
        """Current simulated time (how far the call has been stepped)."""
        return self._now_us

    def advance_to(self, target_us: int) -> int:
        """Step the call forward until its clock reaches *target_us*.

        The incremental API the live :class:`~repro.live.sources.SimSource`
        drives batch by batch; :meth:`run` is one advance_to over the
        whole duration.  Returns the clock after stepping (the first
        multiple of ``step_us`` at or past *target_us*).
        """
        while self._now_us < target_us:
            self._now_us += self.step_us
            if self.tick_hooks:
                for hook in self.tick_hooks:
                    hook(self, self._now_us)
            arrivals_a, arrivals_b = self._pump_access(self._now_us)
            out_a = self.client_a.step(self._now_us, arrivals_a)
            out_b = self.client_b.step(self._now_us, arrivals_b)
            self._route_outgoing(True, out_a)
            self._route_outgoing(False, out_b)
        return self._now_us

    def run(self, duration_us: int) -> SessionResult:
        """Simulate the call for *duration_us* and return all telemetry."""
        self.advance_to(duration_us)
        bundle = self.collector.bundle(duration_us)
        return SessionResult(
            bundle=bundle, client_a=self.client_a, client_b=self.client_b
        )
