"""Canonical versioned wire schema for every object that crosses a boundary.

Before this module existed the repo had three hand-rolled JSON serde
paths that had to stay mutually consistent by luck: the fleet outcome
JSONL (``SessionOutcome.to_json``), the cluster frame codecs
(``cluster/protocol.py``), and the live snapshot writer
(``FleetSnapshot``/``SessionSnapshot.to_json``).  They are all rewired
through here: one :data:`SCHEMA_VERSION`, one explicit field registry
per canonical type, one decode policy.

Design rules:

* **Explicit field registry.**  Every canonical type has a
  :class:`WireCodec` listing its fields (name, required-ness, default,
  nested codec).  Encoding walks the registry, so the wire form cannot
  silently drift from the dataclass; decoding validates against it, so
  a malformed payload raises :class:`~repro.errors.SchemaError` naming
  the offending field instead of a ``KeyError``/``TypeError`` from deep
  inside a constructor.
* **Unknown-field tolerance.**  Decoding ignores fields it does not
  know.  A newer writer can add fields without breaking this reader —
  forward compatibility for rolling fleet upgrades.
* **Versioned artifacts.**  Wire *objects* are plain JSON-type dicts;
  *artifacts* (outcome files, snapshot files, SNAPSHOT frames) carry a
  schema stamp checked by :func:`check_schema_version`, which raises a
  clear :class:`~repro.errors.SchemaVersionError` ("schema version X vs
  Y") on mismatch.
* **Byte stability.**  Floats round-trip bit-exactly through Python's
  ``json`` (``repr`` round-trip), and encoders emit fields in dataclass
  order with the exact key names the legacy serde used — so artifacts
  written through this module are byte-identical to the pre-schema
  writers, which the equivalence tests assert.
"""

from __future__ import annotations

import dataclasses
import json
import os
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Type

from repro.causal.confounders import ConfounderSpec, GroundTruthLabel
from repro.causal.score import CausalReport
from repro.cluster.journal import JournalRecord
from repro.core.detector import DetectorConfig, DominoReport, WindowDetection
from repro.core.events import EventConfig
from repro.errors import SchemaError, SchemaVersionError
from repro.fleet.executor import SessionOutcome
from repro.fleet.scenarios import ImpairmentSpec, ScenarioSpec
from repro.live.aggregator import FleetSnapshot
from repro.live.supervisor import SessionSnapshot
from repro.obs.events import ObsEvent
from repro.obs.trace import TraceSpan
from repro.store.model import AlertEvent, MetricSample, StoreManifest

#: Bump on any incompatible change to a canonical wire form.  Checked
#: wherever a versioned artifact or frame is decoded.
SCHEMA_VERSION = 1

_MISSING = object()


def _copy_value(value: Any) -> Any:
    """Deep-copy containers so wire dicts never alias live objects.

    The ``asdict()``-based encoders this module replaced returned
    independent copies; keeping that contract means a caller may edit a
    wire dict (or the dict it decoded from) without corrupting the
    object behind it.  Scalars pass through.
    """
    if isinstance(value, dict):
        return {key: _copy_value(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_copy_value(item) for item in value]
    return value


class WireField:
    """One entry of a codec's field registry."""

    __slots__ = ("name", "required", "default_factory", "encode", "decode")

    def __init__(
        self,
        name: str,
        *,
        required: bool = True,
        default_factory: Optional[Callable[[], Any]] = None,
        encode: Optional[Callable[[Any], Any]] = None,
        decode: Optional[Callable[[Any], Any]] = None,
    ) -> None:
        self.name = name
        self.required = required
        self.default_factory = default_factory
        self.encode = encode
        self.decode = decode


class WireCodec:
    """Encode/decode one canonical type against its field registry.

    ``stamped=True`` marks an *artifact* kind: its wire dicts carry a
    ``"schema"`` version stamp (inside the dict, not an envelope, so
    the artifact stays one plain JSON object) and decoding validates
    the stamp — a missing stamp means a pre-schema (v1) writer.
    """

    def __init__(
        self,
        kind: str,
        cls: Type,
        fields: Sequence[WireField],
        build: Optional[Callable[[Dict[str, Any]], Any]] = None,
        stamped: bool = False,
    ) -> None:
        self.kind = kind
        self.cls = cls
        self.fields: Tuple[WireField, ...] = tuple(fields)
        self.field_names: Tuple[str, ...] = tuple(f.name for f in fields)
        self.stamped = stamped
        self._build = build or (lambda values: cls(**values))

    def to_wire(self, obj: Any) -> dict:
        if not isinstance(obj, self.cls):
            raise SchemaError(
                f"{self.kind}: cannot encode {type(obj).__name__!r}"
            )
        out: Dict[str, Any] = {}
        for field in self.fields:
            value = getattr(obj, field.name)
            out[field.name] = (
                field.encode(value)
                if field.encode is not None
                else _copy_value(value)
            )
        if self.stamped:
            out["schema"] = SCHEMA_VERSION
        return out

    def from_wire(self, data: Any) -> Any:
        if not isinstance(data, dict):
            raise SchemaError(
                f"{self.kind}: wire payload must be an object, got "
                f"{type(data).__name__}"
            )
        if self.stamped:
            check_schema_version(data.get("schema"), where=self.kind)
        values: Dict[str, Any] = {}
        for field in self.fields:
            raw = data.get(field.name, _MISSING)
            if raw is _MISSING:
                if field.required:
                    raise SchemaError(
                        f"{self.kind}: missing required field "
                        f"{field.name!r}"
                    )
                if field.default_factory is not None:
                    values[field.name] = field.default_factory()
                continue
            try:
                values[field.name] = (
                    field.decode(raw)
                    if field.decode is not None
                    else _copy_value(raw)
                )
            except SchemaError:
                raise
            except (TypeError, ValueError, KeyError, AttributeError) as exc:
                raise SchemaError(
                    f"{self.kind}.{field.name}: malformed value: {exc}"
                )
        # Anything in *data* beyond the registry is ignored: a newer
        # writer's extra fields must not break this reader.
        try:
            return self._build(values)
        except SchemaError:
            raise
        except (TypeError, ValueError, KeyError) as exc:
            raise SchemaError(f"{self.kind}: malformed wire object: {exc}")


def _dataclass_fields(
    cls: Type, overrides: Optional[Dict[str, WireField]] = None
) -> List[WireField]:
    """Field registry mirroring a dataclass's constructor contract.

    Fields without defaults are required on the wire, exactly as they
    are in the constructor; defaulted fields decode to their default
    when absent (a forward-compatible writer may omit them).
    """
    overrides = overrides or {}
    specs: List[WireField] = []
    for field in dataclasses.fields(cls):
        if field.name in overrides:
            specs.append(overrides[field.name])
            continue
        if field.default is not dataclasses.MISSING:
            default = field.default
            specs.append(
                WireField(
                    field.name,
                    required=False,
                    default_factory=lambda d=default: d,
                )
            )
        elif field.default_factory is not dataclasses.MISSING:  # type: ignore[misc]
            specs.append(
                WireField(
                    field.name,
                    required=False,
                    default_factory=field.default_factory,  # type: ignore[misc]
                )
            )
        else:
            specs.append(WireField(field.name))
    return specs


# -- leaf decoders --------------------------------------------------------------


def _tuple_of_tuples(raw: Any) -> Tuple[Tuple[Any, ...], ...]:
    return tuple(tuple(item) for item in raw)


def _str_list(raw: Any) -> List[str]:
    return [str(item) for item in raw]


def _int_list(raw: Any) -> List[int]:
    return [int(item) for item in raw]


def _chain_tuples(raw: Any) -> List[Tuple[str, ...]]:
    return [tuple(str(node) for node in chain) for chain in raw]


def _features_dict(raw: Any) -> dict:
    if not isinstance(raw, dict):
        raise SchemaError(
            f"window_detection.features: expected an object, got "
            f"{type(raw).__name__}"
        )
    return dict(raw)  # detached: the detection must not alias the frame


# -- codec registry -------------------------------------------------------------

_EVENT_CONFIG = WireCodec(
    "event_config", EventConfig, _dataclass_fields(EventConfig)
)

_IMPAIRMENT_SPEC = WireCodec(
    "impairment_spec",
    ImpairmentSpec,
    _dataclass_fields(
        ImpairmentSpec,
        overrides={
            "rrc_releases_s": WireField(
                "rrc_releases_s",
                required=False,
                default_factory=tuple,
                encode=list,
                decode=tuple,
            ),
            "ul_fades": WireField(
                "ul_fades",
                required=False,
                default_factory=tuple,
                encode=lambda fades: [list(f) for f in fades],
                decode=_tuple_of_tuples,
            ),
            "dl_bursts": WireField(
                "dl_bursts",
                required=False,
                default_factory=tuple,
                encode=lambda bursts: [list(b) for b in bursts],
                decode=_tuple_of_tuples,
            ),
        },
    ),
)

_CONFOUNDER_SPEC = WireCodec(
    "confounder_spec", ConfounderSpec, _dataclass_fields(ConfounderSpec)
)

_GROUND_TRUTH = WireCodec(
    "ground_truth",
    GroundTruthLabel,
    _dataclass_fields(
        GroundTruthLabel,
        overrides={
            "axes": WireField(
                "axes",
                required=False,
                default_factory=tuple,
                encode=list,
                decode=lambda raw: tuple(str(a) for a in raw),
            ),
            "spurious": WireField(
                "spurious",
                required=False,
                default_factory=tuple,
                encode=list,
                decode=lambda raw: tuple(str(s) for s in raw),
            ),
            "accepted": WireField(
                "accepted",
                required=False,
                default_factory=tuple,
                encode=list,
                decode=lambda raw: tuple(str(s) for s in raw),
            ),
            "onsets_s": WireField(
                "onsets_s",
                required=False,
                default_factory=tuple,
                encode=list,
                decode=lambda raw: tuple(float(t) for t in raw),
            ),
        },
    ),
)

_SCENARIO_SPEC = WireCodec(
    "scenario_spec",
    ScenarioSpec,
    _dataclass_fields(
        ScenarioSpec,
        overrides={
            "impairment": WireField(
                "impairment",
                required=False,
                default_factory=ImpairmentSpec,
                encode=lambda imp: _IMPAIRMENT_SPEC.to_wire(imp),
                decode=lambda raw: _IMPAIRMENT_SPEC.from_wire(raw),
            ),
            "confounders": WireField(
                "confounders",
                required=False,
                default_factory=tuple,
                encode=lambda confs: [
                    _CONFOUNDER_SPEC.to_wire(c) for c in confs
                ],
                decode=lambda raw: tuple(
                    _CONFOUNDER_SPEC.from_wire(c) for c in raw
                ),
            ),
        },
    ),
)

_DETECTOR_CONFIG = WireCodec(
    "detector_config",
    DetectorConfig,
    _dataclass_fields(
        DetectorConfig,
        overrides={
            "events": WireField(
                "events",
                required=False,
                default_factory=EventConfig,
                encode=lambda events: _EVENT_CONFIG.to_wire(events),
                decode=lambda raw: _EVENT_CONFIG.from_wire(raw),
            ),
        },
    ),
)

_WINDOW_DETECTION = WireCodec(
    "window_detection",
    WindowDetection,
    _dataclass_fields(
        WindowDetection,
        overrides={
            "features": WireField("features", decode=_features_dict),
            "consequences": WireField("consequences", decode=_str_list),
            "causes": WireField("causes", decode=_str_list),
            "chain_ids": WireField("chain_ids", decode=_int_list),
        },
    ),
)

_SESSION_OUTCOME = WireCodec(
    "session_outcome",
    SessionOutcome,
    _dataclass_fields(
        SessionOutcome,
        overrides={
            # Absent on every pre-causal payload: decodes to None.
            "ground_truth": WireField(
                "ground_truth",
                required=False,
                default_factory=lambda: None,
                encode=lambda label: (
                    None if label is None else _GROUND_TRUTH.to_wire(label)
                ),
                decode=lambda raw: (
                    None if raw is None else _GROUND_TRUTH.from_wire(raw)
                ),
            ),
        },
    ),
)

_CAUSAL_REPORT = WireCodec(
    "causal_report",
    CausalReport,
    _dataclass_fields(
        CausalReport,
        overrides={
            "detectors": WireField(
                "detectors",
                required=False,
                default_factory=tuple,
                encode=list,
                decode=lambda raw: tuple(str(d) for d in raw),
            ),
        },
    ),
    stamped=True,  # leaderboard files are artifacts
)

_SESSION_SNAPSHOT = WireCodec(
    "session_snapshot", SessionSnapshot, _dataclass_fields(SessionSnapshot)
)

_FLEET_SNAPSHOT = WireCodec(
    "fleet_snapshot",
    FleetSnapshot,
    _dataclass_fields(
        FleetSnapshot,
        overrides={
            "top_chains": WireField(
                "top_chains",
                required=False,
                default_factory=list,
                encode=lambda pairs: [list(pair) for pair in pairs],
                decode=lambda raw: [tuple(pair) for pair in raw],
            ),
            "sessions": WireField(
                "sessions",
                required=False,
                default_factory=list,
                encode=lambda sessions: [
                    _SESSION_SNAPSHOT.to_wire(s) for s in sessions
                ],
                decode=lambda raw: [
                    _SESSION_SNAPSHOT.from_wire(s) for s in raw
                ],
            ),
        },
    ),
    stamped=True,  # snapshot files / SNAPSHOT frames are artifacts
)

_OBS_EVENT = WireCodec(
    "obs_event",
    ObsEvent,
    _dataclass_fields(ObsEvent),
    stamped=True,  # trace files are artifacts: each line carries the stamp
)

_JOURNAL_RECORD = WireCodec(
    "journal_record",
    JournalRecord,
    _dataclass_fields(JournalRecord),
    stamped=True,  # journal lines are durable artifacts: each carries the stamp
)

_TRACE_SPAN = WireCodec(
    "trace_span",
    TraceSpan,
    _dataclass_fields(TraceSpan),
    stamped=True,  # store segment lines are durable artifacts
)


def _labels_dict(raw: Any) -> Dict[str, str]:
    if not isinstance(raw, dict):
        raise SchemaError(
            f"labels: expected an object, got {type(raw).__name__}"
        )
    return {str(key): str(value) for key, value in raw.items()}


_STORE_MANIFEST = WireCodec(
    "store_manifest",
    StoreManifest,
    _dataclass_fields(StoreManifest),
    stamped=True,  # one per store directory: the artifact of record
)

_METRIC_SAMPLE = WireCodec(
    "metric_sample",
    MetricSample,
    _dataclass_fields(
        MetricSample,
        overrides={
            "labels": WireField(
                "labels",
                required=False,
                default_factory=dict,
                decode=_labels_dict,
            ),
        },
    ),
    stamped=True,  # store segment lines are durable artifacts
)

_ALERT_EVENT = WireCodec(
    "alert_event",
    AlertEvent,
    _dataclass_fields(
        AlertEvent,
        overrides={
            "labels": WireField(
                "labels",
                required=False,
                default_factory=dict,
                decode=_labels_dict,
            ),
        },
    ),
    stamped=True,  # alert logs are durable artifacts
)

_DOMINO_REPORT = WireCodec(
    "domino_report",
    DominoReport,
    _dataclass_fields(
        DominoReport,
        overrides={
            "chains": WireField(
                "chains",
                encode=lambda chains: [list(chain) for chain in chains],
                decode=_chain_tuples,
            ),
            "windows": WireField(
                "windows",
                encode=lambda windows: [
                    _WINDOW_DETECTION.to_wire(w) for w in windows
                ],
                decode=lambda raw: [
                    _WINDOW_DETECTION.from_wire(w) for w in raw
                ],
            ),
        },
    ),
)

#: kind name → codec: the canonical type registry.
WIRE_CODECS: Dict[str, WireCodec] = {
    codec.kind: codec
    for codec in (
        _EVENT_CONFIG,
        _IMPAIRMENT_SPEC,
        _CONFOUNDER_SPEC,
        _GROUND_TRUTH,
        _CAUSAL_REPORT,
        _SCENARIO_SPEC,
        _DETECTOR_CONFIG,
        _WINDOW_DETECTION,
        _SESSION_OUTCOME,
        _SESSION_SNAPSHOT,
        _FLEET_SNAPSHOT,
        _OBS_EVENT,
        _JOURNAL_RECORD,
        _TRACE_SPAN,
        _STORE_MANIFEST,
        _METRIC_SAMPLE,
        _ALERT_EVENT,
        _DOMINO_REPORT,
    )
}

WIRE_KINDS: Tuple[str, ...] = tuple(sorted(WIRE_CODECS))

_CODEC_BY_TYPE: Dict[Type, WireCodec] = {
    codec.cls: codec for codec in WIRE_CODECS.values()
}


# -- generic dispatch -----------------------------------------------------------


def kind_of(obj: Any) -> str:
    """The registry kind name of a canonical object."""
    codec = _CODEC_BY_TYPE.get(type(obj))
    if codec is None:
        raise SchemaError(
            f"no canonical wire form for {type(obj).__name__!r}; "
            f"known kinds: {', '.join(WIRE_KINDS)}"
        )
    return codec.kind


def to_wire(obj: Any) -> dict:
    """Canonical wire dict of any registered type (dispatch on type)."""
    return WIRE_CODECS[kind_of(obj)].to_wire(obj)


def from_wire(kind: str, data: Any) -> Any:
    """Decode a wire dict of the named *kind* back to its object."""
    codec = WIRE_CODECS.get(kind)
    if codec is None:
        raise SchemaError(
            f"unknown wire kind {kind!r}; known kinds: "
            f"{', '.join(WIRE_KINDS)}"
        )
    return codec.from_wire(data)


def check_schema_version(found: Any, *, where: str = "artifact") -> None:
    """Raise :class:`SchemaVersionError` unless *found* is compatible.

    ``None`` passes: artifacts written before the schema stamp existed
    are version-1 by construction, and ``SCHEMA_VERSION`` starts at 1.
    """
    if found is None:
        return
    if found != SCHEMA_VERSION:
        raise SchemaVersionError(found, SCHEMA_VERSION, where)


# -- per-type helpers (the names the subsystems wire through) -------------------


def scenario_spec_to_wire(spec: ScenarioSpec) -> dict:
    return _SCENARIO_SPEC.to_wire(spec)


def scenario_spec_from_wire(data: Any) -> ScenarioSpec:
    return _SCENARIO_SPEC.from_wire(data)


def detector_config_to_wire(
    config: Optional[DetectorConfig],
) -> Optional[dict]:
    """``None`` passes through: "use the defaults" is wire-expressible."""
    return None if config is None else _DETECTOR_CONFIG.to_wire(config)


def detector_config_from_wire(data: Any) -> Optional[DetectorConfig]:
    return None if data is None else _DETECTOR_CONFIG.from_wire(data)


def window_detection_to_wire(detection: WindowDetection) -> dict:
    return _WINDOW_DETECTION.to_wire(detection)


def window_detection_from_wire(data: Any) -> WindowDetection:
    return _WINDOW_DETECTION.from_wire(data)


def detections_to_wire(
    detections: Sequence[WindowDetection],
) -> List[dict]:
    return [_WINDOW_DETECTION.to_wire(w) for w in detections]


def detections_from_wire(data: Sequence[Any]) -> List[WindowDetection]:
    try:
        items = list(data)
    except TypeError as exc:
        raise SchemaError(f"malformed detection batch: {exc}")
    return [_WINDOW_DETECTION.from_wire(w) for w in items]


def chains_to_wire(chains: Sequence[Tuple[str, ...]]) -> List[List[str]]:
    return [list(chain) for chain in chains]


def chains_from_wire(data: Sequence[Sequence[str]]) -> List[Tuple[str, ...]]:
    try:
        return _chain_tuples(data)
    except (TypeError, ValueError) as exc:
        raise SchemaError(f"malformed chain list: {exc}")


def confounder_spec_to_wire(spec: ConfounderSpec) -> dict:
    return _CONFOUNDER_SPEC.to_wire(spec)


def confounder_spec_from_wire(data: Any) -> ConfounderSpec:
    return _CONFOUNDER_SPEC.from_wire(data)


def ground_truth_to_wire(label: GroundTruthLabel) -> dict:
    return _GROUND_TRUTH.to_wire(label)


def ground_truth_from_wire(data: Any) -> GroundTruthLabel:
    return _GROUND_TRUTH.from_wire(data)


def causal_report_to_wire(report: CausalReport) -> dict:
    """CausalReport → stamped wire dict (leaderboards are artifacts)."""
    return _CAUSAL_REPORT.to_wire(report)


def causal_report_from_wire(data: Any) -> CausalReport:
    """Decode a causal report, schema stamp validated."""
    return _CAUSAL_REPORT.from_wire(data)


def session_outcome_to_wire(outcome: SessionOutcome) -> dict:
    return _SESSION_OUTCOME.to_wire(outcome)


def session_outcome_from_wire(data: Any) -> SessionOutcome:
    return _SESSION_OUTCOME.from_wire(data)


def session_snapshot_to_wire(snapshot: SessionSnapshot) -> dict:
    return _SESSION_SNAPSHOT.to_wire(snapshot)


def session_snapshot_from_wire(data: Any) -> SessionSnapshot:
    return _SESSION_SNAPSHOT.from_wire(data)


def fleet_snapshot_to_wire(snapshot: FleetSnapshot) -> dict:
    """FleetSnapshot → stamped wire dict (an artifact kind)."""
    return _FLEET_SNAPSHOT.to_wire(snapshot)


def fleet_snapshot_from_wire(data: Any) -> FleetSnapshot:
    """Decode a snapshot, schema stamp validated (missing stamp = v1)."""
    return _FLEET_SNAPSHOT.from_wire(data)


def obs_event_to_wire(event: ObsEvent) -> dict:
    """ObsEvent → stamped wire dict (trace lines are artifacts)."""
    return _OBS_EVENT.to_wire(event)


def obs_event_from_wire(data: Any) -> ObsEvent:
    """Decode a trace line, schema stamp validated."""
    return _OBS_EVENT.from_wire(data)


def journal_record_to_wire(record: JournalRecord) -> dict:
    """JournalRecord → stamped wire dict (journal lines are artifacts)."""
    return _JOURNAL_RECORD.to_wire(record)


def journal_record_from_wire(data: Any) -> JournalRecord:
    """Decode a journal line, schema stamp validated."""
    return _JOURNAL_RECORD.from_wire(data)


def trace_span_to_wire(span: TraceSpan) -> dict:
    """TraceSpan → stamped wire dict (store segment lines)."""
    return _TRACE_SPAN.to_wire(span)


def trace_span_from_wire(data: Any) -> TraceSpan:
    """Decode a stored trace span, schema stamp validated."""
    return _TRACE_SPAN.from_wire(data)


def store_manifest_to_wire(manifest: StoreManifest) -> dict:
    """StoreManifest → stamped wire dict (the store's identity card)."""
    return _STORE_MANIFEST.to_wire(manifest)


def store_manifest_from_wire(data: Any) -> StoreManifest:
    """Decode a store manifest, schema stamp validated."""
    return _STORE_MANIFEST.from_wire(data)


def metric_sample_to_wire(sample: MetricSample) -> dict:
    """MetricSample → stamped wire dict (store segment lines)."""
    return _METRIC_SAMPLE.to_wire(sample)


def metric_sample_from_wire(data: Any) -> MetricSample:
    """Decode a stored metric sample, schema stamp validated."""
    return _METRIC_SAMPLE.from_wire(data)


def alert_event_to_wire(event: AlertEvent) -> dict:
    """AlertEvent → stamped wire dict (alert logs are artifacts)."""
    return _ALERT_EVENT.to_wire(event)


def alert_event_from_wire(data: Any) -> AlertEvent:
    """Decode an alert event, schema stamp validated."""
    return _ALERT_EVENT.from_wire(data)


def domino_report_to_wire(report: DominoReport) -> dict:
    return _DOMINO_REPORT.to_wire(report)


def domino_report_from_wire(data: Any) -> DominoReport:
    return _DOMINO_REPORT.from_wire(data)


# -- versioned artifacts --------------------------------------------------------


def dumps(obj: Any, **json_kwargs: Any) -> str:
    """``json.dumps(to_wire(obj))`` with stable key order."""
    json_kwargs.setdefault("sort_keys", True)
    return json.dumps(to_wire(obj), **json_kwargs)


def loads(kind: str, text: str) -> Any:
    """Inverse of :func:`dumps` for the named kind."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SchemaError(f"{kind}: undecodable JSON: {exc}")
    return from_wire(kind, data)


def save_snapshot(snapshot: FleetSnapshot, path: str) -> None:
    """Atomically write a fleet snapshot artifact (for ``repro watch``)."""
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w") as handle:
        json.dump(fleet_snapshot_to_wire(snapshot), handle)
    os.replace(tmp, path)  # watchers never observe a torn write


def load_snapshot(path: str) -> FleetSnapshot:
    """Read a fleet snapshot artifact, schema version checked."""
    with open(path) as handle:
        try:
            data = json.load(handle)
        except json.JSONDecodeError as exc:
            raise SchemaError(f"{path}: undecodable snapshot: {exc}")
    return fleet_snapshot_from_wire(data)


__all__ = [
    "SCHEMA_VERSION",
    "WIRE_CODECS",
    "WIRE_KINDS",
    "WireCodec",
    "WireField",
    "alert_event_from_wire",
    "alert_event_to_wire",
    "chains_from_wire",
    "chains_to_wire",
    "causal_report_from_wire",
    "causal_report_to_wire",
    "confounder_spec_from_wire",
    "confounder_spec_to_wire",
    "ground_truth_from_wire",
    "ground_truth_to_wire",
    "check_schema_version",
    "detections_from_wire",
    "detections_to_wire",
    "detector_config_from_wire",
    "detector_config_to_wire",
    "domino_report_from_wire",
    "domino_report_to_wire",
    "dumps",
    "fleet_snapshot_from_wire",
    "fleet_snapshot_to_wire",
    "from_wire",
    "journal_record_from_wire",
    "journal_record_to_wire",
    "kind_of",
    "load_snapshot",
    "loads",
    "metric_sample_from_wire",
    "metric_sample_to_wire",
    "obs_event_from_wire",
    "obs_event_to_wire",
    "save_snapshot",
    "scenario_spec_from_wire",
    "scenario_spec_to_wire",
    "session_outcome_from_wire",
    "session_outcome_to_wire",
    "session_snapshot_from_wire",
    "session_snapshot_to_wire",
    "store_manifest_from_wire",
    "store_manifest_to_wire",
    "to_wire",
    "trace_span_from_wire",
    "trace_span_to_wire",
    "window_detection_from_wire",
    "window_detection_to_wire",
]
