#!/usr/bin/env python3
"""Fig. 8-style comparison of WebRTC performance across the four cells.

Runs one call per cell profile and prints per-cell one-way delay, target
bitrate, frame rate, and jitter-buffer delay distributions for both
directions — the 16-panel grid of the paper's Fig. 8 as percentile rows.

Usage:
    python examples/cell_comparison.py [duration_seconds]
"""

import sys

from repro.analysis.ascii import render_table
from repro.analysis.summarize import summarize_session
from repro.datasets.cells import CELL_PROFILES
from repro.datasets.runner import run_cellular_session


def main() -> None:
    duration_s = float(sys.argv[1]) if len(sys.argv) > 1 else 30.0
    summaries = {}
    for key, profile in CELL_PROFILES.items():
        print(f"Simulating {profile.name} ({duration_s:.0f}s) ...")
        result = run_cellular_session(profile, duration_s=duration_s, seed=11)
        summaries[key] = summarize_session(result.bundle)

    rows = []
    for key, summary in summaries.items():
        rows.append(
            [
                key,
                summary.ul_delay.median,
                summary.dl_delay.median,
                summary.ul_delay.percentile(99),
                summary.dl_delay.percentile(99),
            ]
        )
    print("\nOne-way delay (ms) — Fig. 8a-d:")
    print(
        render_table(
            ["cell", "UL p50", "DL p50", "UL p99", "DL p99"], rows
        )
    )

    rows = [
        [
            key,
            summary.ul_target_bitrate.median / 1e6,
            summary.dl_target_bitrate.median / 1e6,
        ]
        for key, summary in summaries.items()
    ]
    print("\nTarget bitrate (Mbps) — Fig. 8e-h:")
    print(render_table(["cell", "UL p50", "DL p50"], rows))

    rows = [
        [key, summary.ul_fps.median, summary.dl_fps.median]
        for key, summary in summaries.items()
    ]
    print("\nReceiver frame rate (fps) — Fig. 8i-l:")
    print(render_table(["cell", "UL p50", "DL p50"], rows))

    rows = [
        [
            key,
            summary.ul_video_jb.median,
            summary.dl_video_jb.median,
            summary.ul_audio_jb.median,
            summary.dl_audio_jb.median,
        ]
        for key, summary in summaries.items()
    ]
    print("\nJitter-buffer delay (ms) — Fig. 8m-p:")
    print(
        render_table(
            ["cell", "UL vid", "DL vid", "UL aud", "DL aud"], rows
        )
    )


if __name__ == "__main__":
    main()
