"""The BSR / UL grant loop and proactive grants."""

from repro.mac.ulgrant import UlGrantLoop
from repro.phy.cell import CellConfig, Duplex
from repro.phy.grid import ResourceGrid


def _loop(proactive_bytes=0, grant_delay=16, bsr_period=8):
    cell = CellConfig(
        name="t",
        duplex=Duplex.TDD,
        frequency_mhz=3500.0,
        bandwidth_mhz=20,
        scs_khz=30,
        ul_grant_delay_slots=grant_delay,
        bsr_period_slots=bsr_period,
        proactive_grant_bytes=proactive_bytes,
        proactive_grant_period_slots=10,
    )
    grid = cell.make_grid()
    return UlGrantLoop(cell=cell, grid=grid), grid


def test_bsr_triggers_grant_after_delay():
    loop, grid = _loop()
    assert loop.maybe_send_bsr(0, buffered_bytes=5000)
    # No grant before the scheduling delay elapses.
    assert loop.grants_usable_at(10) == []
    # The grant lands on the first uplink slot at/after slot 16.
    expected_slot = grid.next_slot_of_type(16, uplink=True)
    grants = loop.grants_usable_at(expected_slot)
    assert len(grants) == 1
    assert grants[0].granted_bytes == 5000
    assert not grants[0].proactive


def test_bsr_respects_period():
    loop, _ = _loop(bsr_period=8)
    assert loop.maybe_send_bsr(0, 1000)
    assert not loop.maybe_send_bsr(4, 2000)  # too soon
    assert loop.maybe_send_bsr(8, 2000)


def test_bsr_reports_only_unreported_bytes():
    loop, grid = _loop(bsr_period=1)
    assert loop.maybe_send_bsr(0, 5000)
    # Same queue size: all 5000 bytes already have a pending grant.
    assert not loop.maybe_send_bsr(1, 5000)
    # Queue grew: only the delta is reported.
    assert loop.maybe_send_bsr(2, 8000)
    slot = grid.next_slot_of_type(2 + 16, uplink=True)
    grants = loop.grants_usable_at(slot)
    assert sorted(g.granted_bytes for g in grants) == [3000, 5000]


def test_no_bsr_for_empty_buffer():
    loop, _ = _loop()
    assert not loop.maybe_send_bsr(0, 0)
    assert loop.total_bsrs_sent == 0


def test_proactive_grants_issue_periodically():
    loop, grid = _loop(proactive_bytes=1500)
    issued = 0
    for slot in range(0, 100):
        if grid.slot_type(slot).carries_uplink:
            if loop.maybe_issue_proactive(slot):
                issued += 1
    assert issued >= 5
    assert loop.total_proactive_grants == issued


def test_proactive_disabled_by_default():
    loop, grid = _loop(proactive_bytes=0)
    for slot in range(0, 50):
        assert not loop.maybe_issue_proactive(slot)


def test_reset_clears_state():
    loop, grid = _loop()
    loop.maybe_send_bsr(0, 5000)
    loop.reset()
    assert loop.outstanding_grant_bytes() == 0
    slot = grid.next_slot_of_type(40, uplink=True)
    assert loop.grants_usable_at(slot) == []
    # After reset a BSR may be sent immediately again.
    assert loop.maybe_send_bsr(1, 5000)
