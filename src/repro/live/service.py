"""The live RCA service: N concurrent sessions, one rolling fleet view.

:class:`LiveRcaService` multiplexes many
:class:`~repro.live.supervisor.SessionSupervisor` pipelines on one
asyncio loop, folds their detections through a shared
:class:`~repro.live.aggregator.LiveAggregator`, and emits periodic
:class:`~repro.live.aggregator.FleetSnapshot` rollups — to a callback,
and optionally to a JSON file `repro watch` renders.  Housekeeping
evicts sessions whose feed has gone idle, so a wedged source cannot pin
its queue and detector state forever.

The service is the coordinator half of a worker/coordinator seam:
supervisors only touch their own source and detector, the aggregator
only consumes (session_id, detections, chains, watermark) tuples — the
shape a multi-host dispatch layer would ship over the wire.
"""

from __future__ import annotations

import asyncio
import json
from typing import Callable, List, Optional, Sequence

from repro.core.detector import DetectorConfig, WindowDetection
from repro.errors import ConfigError
from repro.live.aggregator import FleetSnapshot, LiveAggregator
from repro.live.sources import TelemetrySource
from repro.live.supervisor import (
    DONE,
    EVICTED,
    FAILED,
    RUNNING,
    SessionSupervisor,
)
from repro.obs.metrics import get_registry, write_metrics_file
from repro.obs.spans import span_quantile_s


def canonical_detections(detections: Sequence[WindowDetection]) -> str:
    """Canonical serialization of a detection list.

    Byte-for-byte stable across runs for identical detections (floats
    round-trip exactly through ``repr``; feature keys are sorted), so
    equality of two canonical strings is the "byte-identical
    detections" bar the live==offline tests assert.
    """
    return json.dumps(
        [
            {
                "start_us": w.start_us,
                "end_us": w.end_us,
                "features": {
                    name: repr(value)
                    for name, value in sorted(w.features.items())
                },
                "consequences": w.consequences,
                "causes": w.causes,
                "chain_ids": w.chain_ids,
            }
            for w in detections
        ],
        sort_keys=True,
    )


class LiveRcaService:
    """Run many live sessions and aggregate their RCA continuously.

    Args:
        sources: one telemetry feed per session.
        detector_config: Domino configuration shared by all sessions.
        chunk_us / queue_batches / backpressure: per-supervisor knobs
            (see :class:`~repro.live.supervisor.SessionSupervisor`).
        snapshot_every_s: periodic rollup interval.
        idle_timeout_s: evict a session after this long without feed
            progress (None = never evict).
        snapshot_path: write each snapshot there as JSON (atomically),
            for `repro watch`.
        metrics_path: flush a Prometheus-text snapshot of the process
            metrics registry there (atomically) on every fleet
            snapshot — the `--metrics-file` exposition path.
        store_dir: also tee every fleet snapshot into the historical
            store at this directory (created on first write) — the
            `--store` retention path.  Purely additive: detections and
            snapshots are byte-identical with the tee on or off.
        on_snapshot: callback invoked with each periodic snapshot.
        detection_sink: extra sink invoked with every detection batch
            *in addition to* the local aggregator — the hook a
            :class:`~repro.cluster.client.DetectionForwarder` plugs
            into to mirror this service's detections onto a remote
            cluster coordinator.
        adaptive_advance: let each supervisor autotune its advance
            interval (see :class:`SessionSupervisor`).
    """

    def __init__(
        self,
        sources: Sequence[TelemetrySource],
        detector_config: Optional[DetectorConfig] = None,
        *,
        chunk_us: int = 30_000_000,
        queue_batches: int = 64,
        backpressure: str = "block",
        snapshot_every_s: float = 0.5,
        idle_timeout_s: Optional[float] = None,
        snapshot_path: Optional[str] = None,
        metrics_path: Optional[str] = None,
        store_dir: Optional[str] = None,
        on_snapshot: Optional[Callable[[FleetSnapshot], None]] = None,
        detection_sink=None,
        adaptive_advance: bool = False,
    ) -> None:
        if not sources:
            raise ConfigError("need at least one telemetry source")
        ids = [source.session_id for source in sources]
        if len(set(ids)) != len(ids):
            raise ConfigError("session ids must be unique")
        self.aggregator = LiveAggregator()
        self.detection_sink = detection_sink
        self.supervisors: List[SessionSupervisor] = []
        for source in sources:
            self.aggregator.register(
                source.session_id, source.profile, source.impairment
            )
            self.supervisors.append(
                SessionSupervisor(
                    source,
                    detector_config,
                    chunk_us=chunk_us,
                    queue_batches=queue_batches,
                    backpressure=backpressure,
                    adaptive_advance=adaptive_advance,
                    on_detections=self._fold_detections,
                )
            )
        self.snapshot_every_s = snapshot_every_s
        self.idle_timeout_s = idle_timeout_s
        self.snapshot_path = snapshot_path
        self.metrics_path = metrics_path
        self.store_dir = store_dir
        self._store = None  # opened lazily on the first snapshot tee
        self.on_snapshot = on_snapshot
        self._seq = 0
        self._started_at: Optional[float] = None
        self._last_now = 0.0

    def _fold_detections(self, session_id, detections, chains, watermark_us):
        """Aggregate locally, then mirror to the extra sink (if any)."""
        self.aggregator.update(session_id, detections, chains, watermark_us)
        if self.detection_sink is not None:
            self.detection_sink(session_id, detections, chains, watermark_us)

    # -- snapshots --------------------------------------------------------------

    def snapshot(self) -> FleetSnapshot:
        """Build the current fleet rollup (incremental, O(sessions))."""
        try:
            now = asyncio.get_running_loop().time()
        except RuntimeError:  # outside the loop (after run() returned)
            now = self._last_now
        self._last_now = now
        started = self._started_at if self._started_at is not None else now
        sessions = []
        for supervisor in self.supervisors:
            # Keep each session's processed-duration clock fresh even
            # when its recent windows held no detections.
            self.aggregator.note_watermark(
                supervisor.session_id, supervisor.watermark_us
            )
            sessions.append(supervisor.snapshot(now))
        fleet = self.aggregator.fleet()
        self._seq += 1
        snapshot = FleetSnapshot(
            seq=self._seq,
            wall_s=now - started,
            n_sessions=len(sessions),
            n_running=sum(1 for s in sessions if s.state == RUNNING),
            n_done=sum(1 for s in sessions if s.state == DONE),
            n_evicted=sum(1 for s in sessions if s.state == EVICTED),
            n_failed=sum(1 for s in sessions if s.state == FAILED),
            total_minutes=self.aggregator.total_minutes,
            windows=sum(s.windows for s in sessions),
            detected_windows=sum(s.detected_windows for s in sessions),
            lag_events=sum(s.lag_events for s in sessions),
            degradation_events_per_min=(
                self.aggregator.degradation_events_per_min
            ),
            top_chains=fleet.top_chains(),
            cause_rates=fleet.fleet_cause_rates(),
            consequence_rates=fleet.fleet_consequence_rates(),
            chain_totals=fleet.fleet_chain_totals(),
            health=self._health(sessions),
            sessions=sessions,
        )
        if self.snapshot_path:
            self._write_snapshot(snapshot)
        if self.store_dir:
            self._tee_store(snapshot)
        if self.metrics_path:
            write_metrics_file(get_registry(), self.metrics_path)
        if self.on_snapshot is not None:
            self.on_snapshot(snapshot)
        return snapshot

    @staticmethod
    def _health(sessions) -> dict:
        """Pipeline-health metrics piggybacked on every snapshot.

        The `repro watch` fleet-health pane renders exactly this dict,
        so anything added here shows up on every watcher for free.
        """
        depths = [s.queue_depth for s in sessions]
        health = {
            "sessions_lagging": float(
                sum(1 for s in sessions if s.lag_events)
            ),
            "lag_records": float(sum(s.lag_events for s in sessions)),
            "queue_depth_max": float(max(depths, default=0)),
            "queue_depth_mean": (
                float(sum(depths)) / len(depths) if depths else 0.0
            ),
        }
        for label, q in (("p50", 0.50), ("p99", 0.99)):
            quantile = span_quantile_s("live.advance", q)
            if quantile is not None:
                health[f"advance_{label}_ms"] = quantile * 1e3
        return health

    def _write_snapshot(self, snapshot: FleetSnapshot) -> None:
        # Canonical versioned artifact (atomic write): what `repro
        # watch` and api.read_snapshot read back, version-checked.
        from repro.schema import save_snapshot

        save_snapshot(snapshot, self.snapshot_path)

    def _tee_store(self, snapshot: FleetSnapshot) -> None:
        import time

        if self._store is None:
            from repro.store import RcaStore

            self._store = RcaStore.open(self.store_dir)
        self._store.ingest_snapshot(snapshot, ts=time.time())

    # -- main loop --------------------------------------------------------------

    async def _housekeeping(self) -> None:
        loop = asyncio.get_running_loop()
        while not all(s.done for s in self.supervisors):
            await asyncio.sleep(self.snapshot_every_s)
            if self.idle_timeout_s is not None:
                now = loop.time()
                for supervisor in self.supervisors:
                    if (
                        not supervisor.done
                        and supervisor.idle_for_s(now) > self.idle_timeout_s
                    ):
                        supervisor.evict()
            self.snapshot()

    async def run(self) -> FleetSnapshot:
        """Run every session to completion; return the final snapshot.

        A failed session does not take the service down — its state is
        reported as ``failed`` in snapshots; eviction likewise.  The
        first failure's exception is available on the supervisor's
        ``error`` attribute.
        """
        loop = asyncio.get_running_loop()
        self._started_at = self._last_now = loop.time()
        tasks = [
            asyncio.create_task(s.run(), name=f"live:{s.session_id}")
            for s in self.supervisors
        ]
        housekeeping = asyncio.create_task(self._housekeeping())
        await asyncio.gather(*tasks, return_exceptions=True)
        housekeeping.cancel()
        try:
            await housekeeping
        except asyncio.CancelledError:
            pass
        self._last_now = loop.time()
        final = self.snapshot()
        if self._store is not None:
            self._store.close()
            self._store = None
        return final


__all__ = ["LiveRcaService", "canonical_detections"]
