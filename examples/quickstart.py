#!/usr/bin/env python3
"""Quickstart: simulate a 5G video call and trace quality degradations.

Runs a 30-second two-party WebRTC call over the commercial T-Mobile
15 MHz FDD cell profile, feeds the collected cross-layer telemetry to
Domino, and prints every detected causal chain plus session statistics.

Usage:
    python examples/quickstart.py [duration_seconds] [seed]
"""

import sys

from repro import api
from repro.analysis.summarize import summarize_session
from repro.core.stats import DominoStats
from repro.datasets.cells import TMOBILE_FDD
from repro.datasets.runner import run_cellular_session


def main() -> None:
    duration_s = float(sys.argv[1]) if len(sys.argv) > 1 else 30.0
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 1

    print(f"Simulating a {duration_s:.0f}s call over {TMOBILE_FDD.name} ...")
    result = run_cellular_session(TMOBILE_FDD, duration_s=duration_s, seed=seed)
    bundle = result.bundle
    rates = bundle.event_rates_per_minute()
    print(
        f"  telemetry: {len(bundle.dci)} DCI, {len(bundle.packets)} packets, "
        f"{len(bundle.webrtc_stats)} WebRTC stats "
        f"({rates['packets']:.0f} pkts/min)"
    )

    summary = summarize_session(bundle)
    print(
        f"  one-way delay median (ms): UL {summary.ul_delay.median:.1f} / "
        f"DL {summary.dl_delay.median:.1f}; "
        f"p99: UL {summary.ul_delay.percentile(99):.1f} / "
        f"DL {summary.dl_delay.percentile(99):.1f}"
    )

    print("\nRunning Domino ...")
    report = api.analyze(bundle)
    detected = report.windows_with_detections()
    print(
        f"  {report.n_windows} windows analysed, "
        f"{len(detected)} with detected causal chains"
    )
    for window in detected[:10]:
        chains = [
            " --> ".join(report.chains[i]) for i in window.chain_ids[:2]
        ]
        t = window.start_us / 1e6
        for chain in chains:
            print(f"  [{t:6.1f}s] {chain}")
    if len(detected) > 10:
        print(f"  ... and {len(detected) - 10} more windows")

    stats = DominoStats.from_report(report)
    print(
        f"\nDegradation events per minute: "
        f"{stats.degradation_events_per_min():.1f} (paper reports ~5)"
    )
    print("Cause attribution shares:")
    for kind, share in stats.cause_attribution_shares().items():
        if share > 0:
            print(f"  {kind.value:<14} {share * 100:5.1f}%")


if __name__ == "__main__":
    main()
