"""The 5G NR time-frequency resource grid and duplexing patterns.

5G NR divides time into slots whose duration depends on the subcarrier
spacing (numerology): 15 kHz SCS gives 1 ms slots, 30 kHz gives 0.5 ms.
Frequency is divided into physical resource blocks (PRBs) of 12
subcarriers.  In time-division duplexing (TDD) slots alternate between
downlink and uplink according to a repeating pattern (e.g. ``DDDSU``);
in frequency-division duplexing (FDD) every slot carries both directions
on separate bands (Fig. 15a/b of the paper).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List

from repro.errors import ConfigError
from repro.units import US_PER_MS


class SlotType(enum.Enum):
    """Direction(s) a slot can carry."""

    DOWNLINK = "D"
    UPLINK = "U"
    SPECIAL = "S"  # guard/switching slot: usable partially for DL control
    BOTH = "B"  # FDD: both directions simultaneously

    @property
    def carries_downlink(self) -> bool:
        return self in (SlotType.DOWNLINK, SlotType.BOTH, SlotType.SPECIAL)

    @property
    def carries_uplink(self) -> bool:
        return self in (SlotType.UPLINK, SlotType.BOTH)


#: Slot duration (µs) per subcarrier spacing (kHz).
_SLOT_DURATION_US = {15: 1000, 30: 500, 60: 250, 120: 125}

#: Approximate PRB counts per channel bandwidth (MHz) and SCS (kHz),
#: from TS 38.101-1 Table 5.3.2-1.
_PRB_TABLE = {
    (15, 10): 52,
    (15, 15): 79,
    (15, 20): 106,
    (30, 10): 24,
    (30, 15): 38,
    (30, 20): 51,
    (30, 40): 106,
    (30, 60): 162,
    (30, 80): 217,
    (30, 100): 273,
}


def prb_count(scs_khz: int, bandwidth_mhz: int) -> int:
    """Number of PRBs for a channel of *bandwidth_mhz* at *scs_khz* SCS."""
    try:
        return _PRB_TABLE[(scs_khz, bandwidth_mhz)]
    except KeyError:
        # Fall back to the analytic approximation: usable bandwidth is about
        # 90% of the channel, each PRB is 12 * scs wide.
        prb_hz = 12 * scs_khz * 1000
        return max(1, int(bandwidth_mhz * 1e6 * 0.9 / prb_hz))


def slot_duration_us(scs_khz: int) -> int:
    """Slot duration in µs for the given subcarrier spacing."""
    try:
        return _SLOT_DURATION_US[scs_khz]
    except KeyError:
        raise ConfigError(f"unsupported subcarrier spacing {scs_khz} kHz")


@dataclass
class ResourceGrid:
    """Slot timing and duplexing pattern for one cell.

    Args:
        scs_khz: subcarrier spacing in kHz (15 or 30 for sub-6 GHz).
        bandwidth_mhz: channel bandwidth in MHz.
        tdd_pattern: a string over ``DUS`` describing the repeating TDD
            slot pattern (e.g. ``"DDDSU"``, the common 5G NR pattern);
            ignored for FDD grids (pass ``None``).

    An FDD grid reports every slot as :attr:`SlotType.BOTH`.
    """

    scs_khz: int
    bandwidth_mhz: int
    tdd_pattern: "str | None" = "DDDSU"
    _pattern: List[SlotType] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.slot_us = slot_duration_us(self.scs_khz)
        self.n_prb = prb_count(self.scs_khz, self.bandwidth_mhz)
        if self.tdd_pattern is None:
            self._pattern = [SlotType.BOTH]
        else:
            mapping = {
                "D": SlotType.DOWNLINK,
                "U": SlotType.UPLINK,
                "S": SlotType.SPECIAL,
            }
            try:
                self._pattern = [mapping[c] for c in self.tdd_pattern.upper()]
            except KeyError as exc:
                raise ConfigError(
                    f"invalid TDD pattern character in {self.tdd_pattern!r}"
                ) from exc
            if not self._pattern:
                raise ConfigError("TDD pattern must not be empty")

    @property
    def is_fdd(self) -> bool:
        return self.tdd_pattern is None

    @property
    def pattern_length(self) -> int:
        return len(self._pattern)

    def slot_type(self, slot_index: int) -> SlotType:
        """Slot type for absolute slot number *slot_index*."""
        return self._pattern[slot_index % len(self._pattern)]

    def slot_start_us(self, slot_index: int) -> int:
        """Start time (µs) of slot *slot_index*."""
        return slot_index * self.slot_us

    def slot_index_at(self, timestamp_us: int) -> int:
        """Index of the slot containing *timestamp_us*."""
        return timestamp_us // self.slot_us

    def next_slot_of_type(self, from_slot: int, uplink: bool) -> int:
        """First slot index >= *from_slot* that carries the given direction.

        Used by the UL grant loop: a grant issued in slot *n* points at the
        next uplink opportunity (``k`` slots later in Fig. 15a/b).
        """
        for offset in range(2 * len(self._pattern) + 1):
            candidate = from_slot + offset
            slot = self.slot_type(candidate)
            if uplink and slot.carries_uplink:
                return candidate
            if not uplink and slot.carries_downlink:
                return candidate
        raise ConfigError(
            f"TDD pattern {self.tdd_pattern!r} has no "
            f"{'uplink' if uplink else 'downlink'} slots"
        )

    def slots_per_second(self) -> int:
        return US_PER_MS * 1000 // self.slot_us

    def uplink_slot_fraction(self) -> float:
        """Fraction of slots usable for uplink data."""
        if self.is_fdd:
            return 1.0
        ul = sum(1 for s in self._pattern if s.carries_uplink)
        return ul / len(self._pattern)

    def downlink_slot_fraction(self) -> float:
        """Fraction of slots usable for downlink data."""
        if self.is_fdd:
            return 1.0
        dl = sum(1 for s in self._pattern if s is SlotType.DOWNLINK)
        return dl / len(self._pattern)
