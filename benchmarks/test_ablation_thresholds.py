"""Ablation: event-condition thresholds (Table 5 rows 15-17).

Sweeps the cross-traffic PRB ratio (paper: 20%), the HARQ ReTX count
(paper: 20 per window), and the delay-up magnitude (paper: 80 ms),
showing each threshold's effect on event prevalence — the knobs a
network operator would tune when deploying Domino elsewhere.
"""

from dataclasses import replace

from conftest import save_result

from repro.analysis.ascii import render_table
from repro.core.detector import DetectorConfig, DominoDetector
from repro.core.events import EventConfig


def _event_rate(bundle, config: EventConfig, feature: str) -> float:
    detector = DominoDetector(DetectorConfig(events=config))
    report = detector.analyze(bundle)
    hits = sum(1 for w in report.windows if w.features[feature])
    return hits / max(report.n_windows, 1)


def test_ablation_event_thresholds(benchmark, fdd_results):
    bundle = fdd_results[0].bundle
    base = EventConfig()

    def build():
        rows = []
        for fraction in (0.1, 0.2, 0.4):
            config = replace(base, cross_traffic_fraction=fraction)
            rows.append(
                [
                    f"cross_traffic_fraction={fraction}",
                    _event_rate(bundle, config, "dl_cross_traffic"),
                ]
            )
        for count in (5, 20, 80):
            config = replace(base, harq_retx_count=count)
            rows.append(
                [
                    f"harq_retx_count={count}",
                    _event_rate(bundle, config, "ul_harq_retx"),
                ]
            )
        for delay_ms in (40.0, 80.0, 160.0):
            config = replace(base, delay_up_min_ms=delay_ms)
            rows.append(
                [
                    f"delay_up_min_ms={delay_ms:.0f}",
                    _event_rate(bundle, config, "ul_delay_up"),
                ]
            )
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    text = render_table(["threshold", "window hit rate"], rows)
    save_result("ablation_thresholds", text)

    by_label = {row[0]: row[1] for row in rows}
    # Monotonicity: loosening a threshold can only increase prevalence.
    assert (
        by_label["cross_traffic_fraction=0.1"]
        >= by_label["cross_traffic_fraction=0.4"]
    )
    assert by_label["harq_retx_count=5"] >= by_label["harq_retx_count=80"]
    assert by_label["delay_up_min_ms=40"] >= by_label["delay_up_min_ms=160"]
