"""Unit conversions."""

from repro.units import (
    bits_to_bytes,
    bytes_to_bits,
    kbps,
    mbps,
    ms,
    rate_over_interval,
    seconds,
    to_mbps,
    to_ms,
    to_seconds,
    us,
)


def test_time_conversions_roundtrip():
    assert ms(20) == 20_000
    assert seconds(1.5) == 1_500_000
    assert us(3.2) == 3
    assert to_ms(20_000) == 20.0
    assert to_seconds(1_500_000) == 1.5


def test_ms_rounds_to_nearest_microsecond():
    # Python's round() is round-half-to-even.
    assert ms(0.0006) == 1
    assert ms(0.0004) == 0
    assert ms(1.0004) == 1000


def test_rate_conversions():
    assert mbps(2.5) == 2_500_000.0
    assert kbps(300) == 300_000.0
    assert to_mbps(2_500_000.0) == 2.5


def test_size_conversions():
    assert bytes_to_bits(100) == 800
    assert bits_to_bytes(801) == 100  # floor


def test_rate_over_interval():
    # 1250 bytes in 10 ms -> 1 Mbit/s
    assert rate_over_interval(1250, 10_000) == 1_000_000.0


def test_rate_over_empty_interval_is_zero():
    assert rate_over_interval(100, 0) == 0.0
    assert rate_over_interval(100, -5) == 0.0
