"""Markdown incident reports rendered from stored alert events.

One report per alert transition: what fired, the triggering series
(sparklined from the store's episode-rate buckets), the dominant Domino
chains inside the trigger window, and the profiles/impairments that
carried them — enough for an on-call reader to decide whether the
surge is a cell problem, a profile problem, or fleet-wide, without
opening the store themselves.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from repro.live.dashboard import sparkline
from repro.store.model import ALERT_FIRING, AlertEvent
from repro.store.query import StoreQuery

#: Trigger-window multiples of history shown in the report's series.
SERIES_WINDOWS = 8
#: Rows per "top" table in the report.
TOP_ROWS = 5


def _fmt_ts(ts: float) -> str:
    return time.strftime("%Y-%m-%d %H:%M:%SZ", time.gmtime(ts))


def _signal_kind(signal: str) -> Optional[str]:
    if signal in ("chain_rate", "cause_rate", "consequence_rate"):
        return signal.split("_", 1)[0]
    return None


def render_incident_report(
    event: AlertEvent, query: Optional[StoreQuery] = None
) -> str:
    """Render one alert event as a Markdown incident report.

    With a :class:`StoreQuery`, the report embeds the triggering series
    and the window's dominant chains and affected profiles; without
    one (e.g. rendering a forwarded event elsewhere), it degrades to
    the event's own facts.
    """
    firing = event.state == ALERT_FIRING
    title = "firing" if firing else "resolved"
    lines: List[str] = [
        f"# Incident: `{event.rule}` {title}",
        "",
        f"- **When:** {_fmt_ts(event.ts)}",
        f"- **Severity:** {event.severity}",
        f"- **Signal:** `{event.signal}` matching "
        f"`{event.labels.get('match', '*')}`",
        f"- **Observed:** {event.value:.4g} vs threshold "
        f"{event.threshold:.4g} over a {event.window_s:.0f}s window",
    ]
    if event.message:
        lines += ["", f"> {event.message}"]
    if query is None:
        lines.append("")
        return "\n".join(lines)

    window_lo = event.ts - event.window_s
    match = event.labels.get("match", "*")
    kind = _signal_kind(event.signal)

    # Triggering series: the rule's signal bucketed at window width,
    # reaching back SERIES_WINDOWS windows so the crossing has context.
    if kind is not None:
        since = event.ts - SERIES_WINDOWS * event.window_s
        series = query.episode_rate_series(
            match,
            kind,
            bucket_s=event.window_s,
            since=since,
            until=event.ts,
        )
        rates = [rate for _ts, rate in series]
        lines += [
            "",
            "## Triggering series",
            "",
            f"`{sparkline(rates)}`  "
            f"({len(rates)} × {event.window_s:.0f}s buckets, "
            f"newest right; peak {max(rates):.3g}/min)"
            if rates
            else "(no series points in range)",
        ]

    # Dominant chains inside the trigger window.
    chains = query.rollup_episodes(
        "chain", since=window_lo, until=event.ts, top=TOP_ROWS
    )
    lines += ["", "## Dominant Domino chains (trigger window)", ""]
    if chains:
        lines += [
            "| chain | episodes | per min |",
            "| --- | ---: | ---: |",
        ]
        lines += [
            f"| `{row['name']}` | {row['episodes']:.0f} "
            f"| {row['episodes_per_min']:.3g} |"
            for row in chains
        ]
    else:
        lines.append("(no chain episodes recorded in the window)")

    # Who carried it: profiles and impairments by outcome volume.
    for group, heading in (
        ("profile", "Top affected profiles"),
        ("impairment", "Top affected impairments"),
    ):
        rows = query.rollup_outcomes(
            group, since=window_lo, until=event.ts
        )[:TOP_ROWS]
        lines += ["", f"## {heading}", ""]
        if rows:
            lines += [
                f"| {group} | outcomes | detected frac | deg/min |",
                "| --- | ---: | ---: | ---: |",
            ]
            lines += [
                f"| `{row['name']}` | {row['outcomes']} "
                f"| {row['detected_frac']:.2f} "
                f"| {row['degradation_events_per_min']:.3g} |"
                for row in rows
            ]
        else:
            lines.append("(no outcomes in the window)")
    lines.append("")
    return "\n".join(lines)


def render_alerts_pane(
    firing: List[str], recent: List[Dict[str, object]], max_rows: int = 4
) -> str:
    """Compact "Alerts" pane for the `repro watch` dashboard."""
    if firing:
        head = f"Alerts: {len(firing)} FIRING — " + ", ".join(firing)
    else:
        head = "Alerts: none firing"
    lines = [head]
    for entry in recent[-max_rows:]:
        lines.append(
            f"  [{_fmt_ts(float(entry['ts']))}] {entry['rule']} "
            f"{entry['state']}: {entry['message']}"
        )
    return "\n".join(lines)


__all__ = ["render_alerts_pane", "render_incident_report"]
