"""Loss-based rate bound.

GCC complements the delay-based estimator with a loss-driven controller:
above ~10 % loss the rate is cut proportionally; below ~2 % it may grow;
in between it holds.  The final GCC target is the minimum of the two
estimators.  In the paper's 5G traces loss is rare (RLC recovers
everything), so the delay-based path dominates — but the loss controller
matters for the Wi-Fi/wired campus comparisons (Figs. 5–6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass
class LossBasedControl:
    """Windowed loss-fraction controller (libwebrtc semantics).

    Args:
        initial_bps: starting bound.
        min_bps / max_bps: clamp bounds.
        low_loss: below this fraction the rate may increase.
        high_loss: above this fraction the rate decreases.
        increase_gain_per_s: multiplicative growth while loss is low.
    """

    initial_bps: float = 1_000_000.0
    min_bps: float = 30_000.0
    max_bps: float = 8_000_000.0
    low_loss: float = 0.02
    high_loss: float = 0.10
    increase_gain_per_s: float = 1.08

    target_bps: float = 0.0
    _last_update_us: Optional[int] = None

    def __post_init__(self) -> None:
        self.target_bps = float(self.initial_bps)

    def update(self, loss_fraction: float, now_us: int) -> float:
        """Feed one loss report (fraction of packets lost since last)."""
        dt_s = 0.0
        if self._last_update_us is not None:
            dt_s = max(0.0, (now_us - self._last_update_us) / 1e6)
        dt_s = min(dt_s, 1.0)
        self._last_update_us = now_us

        if loss_fraction > self.high_loss:
            self.target_bps *= 1.0 - 0.5 * loss_fraction
        elif loss_fraction < self.low_loss:
            self.target_bps *= self.increase_gain_per_s ** dt_s
        # between low and high: hold
        self.target_bps = min(max(self.target_bps, self.min_bps), self.max_bps)
        return self.target_bps
