"""Time-aligned, uniformly resampled view of a telemetry bundle.

Domino's event conditions (Table 5) operate on windows of synchronised
time series.  :class:`Timeline` resamples all four telemetry sources of a
:class:`~repro.telemetry.records.TelemetryBundle` onto one uniform grid
(default 50 ms — the paper's WebRTC stats rate), producing named numpy
arrays.  Bins without records hold NaN (or 0 for counters) and sparse
app-state series are forward-filled, matching how the paper's pipeline
vectorises its data before the sliding-window pass (§4.2).

Naming convention (all per-bin):

* ``local_*`` / ``remote_*`` — application metrics of the cellular and
  wired client respectively (outbound = that client's sent stream).
* ``ul_*`` / ``dl_*`` — 5G/packet metrics per physical direction
  (uplink = cellular client → network).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.errors import TelemetryError
from repro.telemetry.records import (
    GnbLogKind,
    StreamKind,
    TelemetryBundle,
)

#: GCC network-state encoding in the resampled arrays.
GCC_STATE_CODE = {"underuse": -1, "normal": 0, "overuse": 1}


def _forward_fill(values: np.ndarray) -> np.ndarray:
    """Forward-fill NaNs in place (leading NaNs become 0)."""
    mask = np.isnan(values)
    if not mask.any():
        return values
    idx = np.where(~mask, np.arange(len(values)), 0)
    np.maximum.accumulate(idx, out=idx)
    filled = values[idx]
    filled[np.isnan(filled)] = 0.0
    return filled


@dataclass
class Timeline:
    """Uniform cross-layer time series for one session.

    Attributes:
        dt_us: bin width of the grid.
        n_bins: number of bins.
        series: mapping from variable name to a float array of length
            ``n_bins``.
    """

    dt_us: int
    n_bins: int
    series: Dict[str, np.ndarray] = field(default_factory=dict)

    #: App-stat fields copied per client from WebRtcStatsRecord.
    _APP_FIELDS = (
        "inbound_fps",
        "outbound_fps",
        "outbound_resolution_p",
        "inbound_resolution_p",
        "video_jitter_buffer_ms",
        "audio_jitter_buffer_ms",
        "target_bitrate_bps",
        "pushback_bitrate_bps",
        "outstanding_bytes",
        "congestion_window_bytes",
        "gcc_trend_slope",
        "gcc_threshold",
    )

    @classmethod
    def from_bundle(
        cls, bundle: TelemetryBundle, dt_us: int = 50_000
    ) -> "Timeline":
        """Resample *bundle* onto a uniform grid of *dt_us* bins."""
        if dt_us <= 0:
            raise TelemetryError("dt_us must be positive")
        n_bins = max(1, math.ceil(bundle.duration_us / dt_us))
        timeline = cls(dt_us=dt_us, n_bins=n_bins)
        timeline._ingest_webrtc(bundle)
        timeline._ingest_packets(bundle)
        timeline._ingest_dci(bundle)
        timeline._ingest_gnb_log(bundle)
        return timeline

    # -- construction helpers -------------------------------------------------

    def _bin(self, ts_us: int) -> Optional[int]:
        index = ts_us // self.dt_us
        if 0 <= index < self.n_bins:
            return int(index)
        return None

    def _new(self, name: str, fill: float = np.nan) -> np.ndarray:
        array = np.full(self.n_bins, fill, dtype=float)
        self.series[name] = array
        return array

    def _ingest_webrtc(self, bundle: TelemetryBundle) -> None:
        client_role = {
            bundle.cellular_client: "local",
            bundle.wired_client: "remote",
        }
        arrays: Dict[str, np.ndarray] = {}
        for role in ("local", "remote"):
            for fieldname in self._APP_FIELDS:
                arrays[f"{role}_{fieldname}"] = self._new(
                    f"{role}_{fieldname}"
                )
            arrays[f"{role}_gcc_state"] = self._new(f"{role}_gcc_state")
            arrays[f"{role}_frozen"] = self._new(f"{role}_frozen", 0.0)
            arrays[f"{role}_concealed"] = self._new(f"{role}_concealed", 0.0)
            arrays[f"{role}_total_samples"] = self._new(
                f"{role}_total_samples", 0.0
            )
        for record in bundle.webrtc_stats:
            role = client_role.get(record.client)
            if role is None:
                continue
            index = self._bin(record.ts_us)
            if index is None:
                continue
            for fieldname in self._APP_FIELDS:
                arrays[f"{role}_{fieldname}"][index] = getattr(
                    record, fieldname
                )
            arrays[f"{role}_gcc_state"][index] = GCC_STATE_CODE.get(
                record.gcc_state, 0
            )
            arrays[f"{role}_frozen"][index] = float(record.frozen)
            arrays[f"{role}_concealed"][index] += record.concealed_samples
            arrays[f"{role}_total_samples"][index] += record.total_samples
        for name in list(self.series):
            if name.endswith(("_frozen", "_concealed", "_total_samples")):
                continue
            if name.startswith(("local_", "remote_")):
                self.series[name] = _forward_fill(self.series[name])

    def _ingest_packets(self, bundle: TelemetryBundle) -> None:
        for direction, flag in (("ul", True), ("dl", False)):
            delay_sum = np.zeros(self.n_bins)
            delay_count = np.zeros(self.n_bins)
            bytes_sent = np.zeros(self.n_bins)
            lost = np.zeros(self.n_bins)
            rtcp_delay_sum = np.zeros(self.n_bins)
            rtcp_delay_count = np.zeros(self.n_bins)
            for packet in bundle.packets:
                if packet.is_uplink != flag:
                    continue
                index = self._bin(packet.sent_us)
                if index is None:
                    continue
                bytes_sent[index] += packet.size_bytes
                if packet.received_us is None:
                    lost[index] += 1
                    continue
                delay = packet.received_us - packet.sent_us
                if packet.stream is StreamKind.RTCP:
                    rtcp_delay_sum[index] += delay
                    rtcp_delay_count[index] += 1
                else:
                    delay_sum[index] += delay
                    delay_count[index] += 1
            with np.errstate(invalid="ignore"):
                delay_ms = np.where(
                    delay_count > 0, delay_sum / np.maximum(delay_count, 1), np.nan
                ) / 1000.0
                rtcp_ms = np.where(
                    rtcp_delay_count > 0,
                    rtcp_delay_sum / np.maximum(rtcp_delay_count, 1),
                    np.nan,
                ) / 1000.0
            self.series[f"{direction}_packet_delay_ms"] = _forward_fill(delay_ms)
            self.series[f"{direction}_rtcp_delay_ms"] = _forward_fill(rtcp_ms)
            self.series[f"{direction}_lost_packets"] = lost
            # App send rate in bit/s over each bin (condition 14 input).
            self.series[f"{direction}_app_bitrate_bps"] = (
                bytes_sent * 8.0 * 1e6 / self.dt_us
            )

    def _ingest_dci(self, bundle: TelemetryBundle) -> None:
        for direction, flag in (("ul", True), ("dl", False)):
            exp_prbs = np.zeros(self.n_bins)
            other_prbs = np.zeros(self.n_bins)
            tbs_bits = np.zeros(self.n_bins)
            harq_retx = np.zeros(self.n_bins)
            mcs_sum = np.zeros(self.n_bins)
            mcs_count = np.zeros(self.n_bins)
            mcs_min = np.full(self.n_bins, np.nan)
            rnti = np.full(self.n_bins, np.nan)
            exp_rntis = self._experiment_rntis(bundle)
            for record in bundle.dci:
                if record.is_uplink != flag:
                    continue
                index = self._bin(record.ts_us)
                if index is None:
                    continue
                if record.rnti in exp_rntis:
                    exp_prbs[index] += record.n_prb
                    if record.is_retx:
                        harq_retx[index] += 1
                    else:
                        tbs_bits[index] += record.tbs_bits
                    mcs_sum[index] += record.mcs
                    mcs_count[index] += 1
                    current_min = mcs_min[index]
                    if np.isnan(current_min) or record.mcs < current_min:
                        mcs_min[index] = record.mcs
                    rnti[index] = record.rnti
                else:
                    other_prbs[index] += record.n_prb
            with np.errstate(invalid="ignore"):
                mcs_mean = np.where(
                    mcs_count > 0, mcs_sum / np.maximum(mcs_count, 1), np.nan
                )
            self.series[f"{direction}_exp_prbs"] = exp_prbs
            self.series[f"{direction}_other_prbs"] = other_prbs
            self.series[f"{direction}_tbs_bits"] = tbs_bits
            self.series[f"{direction}_tbs_bitrate_bps"] = (
                tbs_bits * 1e6 / self.dt_us
            )
            self.series[f"{direction}_harq_retx"] = harq_retx
            self.series[f"{direction}_mcs_mean"] = mcs_mean  # NaN = not sched.
            self.series[f"{direction}_mcs_min"] = mcs_min
            self.series[f"{direction}_scheduled"] = (mcs_count > 0).astype(
                float
            )
            self.series[f"{direction}_rnti"] = _forward_fill(rnti)

    @staticmethod
    def _experiment_rntis(bundle: TelemetryBundle) -> set:
        """RNTIs belonging to the experiment UE.

        Cross-traffic UEs use RNTIs >= 40000 by convention (see
        :class:`repro.mac.crosstraffic.CrossTrafficUe`); the experiment
        UE's RNTI changes across RRC transitions, so collect every RNTI
        below that range.
        """
        return {r.rnti for r in bundle.dci if r.rnti < 40_000}

    def _ingest_gnb_log(self, bundle: TelemetryBundle) -> None:
        for direction, flag in (("ul", True), ("dl", False)):
            buffer_bytes = np.full(self.n_bins, np.nan)
            rlc_retx = np.zeros(self.n_bins)
            for record in bundle.gnb_log:
                index = self._bin(record.ts_us)
                if index is None:
                    continue
                if record.kind is GnbLogKind.RLC_BUFFER:
                    if record.is_uplink == flag:
                        buffer_bytes[index] = record.buffer_bytes
                elif record.kind is GnbLogKind.RLC_RETX:
                    if record.is_uplink == flag:
                        rlc_retx[index] += 1
            self.series[f"{direction}_rlc_buffer_bytes"] = _forward_fill(
                buffer_bytes
            )
            self.series[f"{direction}_rlc_retx"] = rlc_retx
        rrc_change = np.zeros(self.n_bins)
        for record in bundle.gnb_log:
            if record.kind in (GnbLogKind.RRC_RELEASE, GnbLogKind.RRC_CONNECT):
                index = self._bin(record.ts_us)
                if index is not None:
                    rrc_change[index] += 1
        self.series["rrc_events"] = rrc_change

    # -- accessors -----------------------------------------------------------

    def __getitem__(self, name: str) -> np.ndarray:
        try:
            return self.series[name]
        except KeyError:
            raise TelemetryError(f"timeline has no series named {name!r}")

    def __contains__(self, name: str) -> bool:
        return name in self.series

    @property
    def t_us(self) -> np.ndarray:
        """Bin start times."""
        return np.arange(self.n_bins, dtype=np.int64) * self.dt_us

    def window(self, start_bin: int, length_bins: int) -> "Dict[str, np.ndarray]":
        """Slice every series to [start_bin, start_bin + length_bins)."""
        stop = min(self.n_bins, start_bin + length_bins)
        return {
            name: values[start_bin:stop] for name, values in self.series.items()
        }
