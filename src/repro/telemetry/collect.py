"""Telemetry collector the simulators write into during a session.

One collector instance is shared by the RAN simulator (DCI + gNB log),
the network path (packet records), and both WebRTC clients (stats
records).  At the end of a run :meth:`TelemetryCollector.bundle` freezes
everything into a :class:`~repro.telemetry.records.TelemetryBundle`,
sorted by timestamp — the input format Domino consumes.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.telemetry.records import (
    DciRecord,
    GnbLogRecord,
    PacketRecord,
    TelemetryBundle,
    WebRtcStatsRecord,
)


class TelemetryCollector:
    """Accumulates telemetry records during one simulated session."""

    def __init__(
        self,
        session_name: str,
        cellular_client: str = "cellular",
        wired_client: str = "wired",
        gnb_log_available: bool = False,
    ) -> None:
        self.session_name = session_name
        self.cellular_client = cellular_client
        self.wired_client = wired_client
        self.gnb_log_available = gnb_log_available
        self._dci: List[DciRecord] = []
        self._gnb_log: List[GnbLogRecord] = []
        self._packets: Dict[int, PacketRecord] = {}
        self._webrtc: List[WebRtcStatsRecord] = []

    # -- RAN-side records ---------------------------------------------------

    def record_dci(self, record: DciRecord) -> None:
        self._dci.append(record)

    def record_gnb_log(self, record: GnbLogRecord) -> None:
        if self.gnb_log_available:
            self._gnb_log.append(record)

    # -- packet trace ---------------------------------------------------------

    def record_packet_sent(self, record: PacketRecord) -> None:
        """Register a packet at its sender-side capture point."""
        self._packets[record.packet_id] = record

    def record_packet_received(
        self, packet_id: int, received_us: int
    ) -> None:
        """Join the receiver-side capture for *packet_id*."""
        record = self._packets.get(packet_id)
        if record is not None:
            record.received_us = received_us

    # -- application stats ------------------------------------------------------

    def record_webrtc_stats(self, record: WebRtcStatsRecord) -> None:
        self._webrtc.append(record)

    # -- output -----------------------------------------------------------------

    def bundle(self, duration_us: int) -> TelemetryBundle:
        """Freeze all records into a sorted TelemetryBundle."""
        return TelemetryBundle(
            session_name=self.session_name,
            duration_us=duration_us,
            cellular_client=self.cellular_client,
            wired_client=self.wired_client,
            gnb_log_available=self.gnb_log_available,
            dci=sorted(self._dci, key=lambda r: r.ts_us),
            gnb_log=sorted(self._gnb_log, key=lambda r: r.ts_us),
            packets=sorted(
                self._packets.values(), key=lambda r: r.sent_us
            ),
            webrtc_stats=sorted(self._webrtc, key=lambda r: r.ts_us),
        )
