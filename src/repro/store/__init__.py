"""repro.store — the historical RCA store, query plane, and alerting.

Everything upstream is ephemeral by design: live snapshots overwrite in
place, campaign outcomes are flat JSONL, and ``repro.obs`` metrics die
with the process.  This package is where observations go to persist:

- :mod:`repro.store.model` — the codec-registered leaf dataclasses
  (:class:`StoreManifest`, :class:`MetricSample`, :class:`AlertEvent`).
- :mod:`repro.store.db` — :class:`RcaStore`, an embedded
  time-partitioned store: append-only JSONL segments (one directory per
  time partition, every line a ``repro.schema`` wire envelope) plus a
  rebuildable sqlite index for fast rollups, with retention compaction.
- :mod:`repro.store.query` — :class:`StoreQuery`: time-range rollups by
  chain / profile / impairment, episode-rate series, top-k movers
  between windows, QoE percentile trends.
- :mod:`repro.store.alerts` — declarative TOML/JSON alert rules and the
  :class:`AlertEngine` that evaluates them over history or live on the
  aggregator stream, emitting schema-versioned :class:`AlertEvent`\\ s.
- :mod:`repro.store.reports` — Markdown incident reports from alert
  events and their triggering series.

Import mechanics: :mod:`repro.schema.wire` imports the leaf
``repro.store.model`` to register its codecs, which executes this
``__init__`` — so like :mod:`repro.cluster`, the package keeps its
namespace lazy (PEP 562) and imports nothing at module level.
"""

from typing import TYPE_CHECKING

_EXPORTS = {
    "ALERT_FIRING": "model",
    "ALERT_RESOLVED": "model",
    "STORE_LAYOUT_VERSION": "model",
    "AlertEvent": "model",
    "MetricSample": "model",
    "StoreManifest": "model",
    "INGEST_METRIC": "db",
    "ROWS_METRIC": "db",
    "RcaStore": "db",
    "QUERY_METRIC": "query",
    "StoreQuery": "query",
    "AlertEngine": "alerts",
    "AlertRule": "alerts",
    "FIRING_METRIC": "alerts",
    "load_rules": "alerts",
    "render_alerts_pane": "reports",
    "render_incident_report": "reports",
}

__all__ = sorted(_EXPORTS)

if TYPE_CHECKING:  # pragma: no cover - typing aid only
    from repro.store.alerts import AlertEngine, AlertRule, load_rules
    from repro.store.db import RcaStore
    from repro.store.model import (
        ALERT_FIRING,
        ALERT_RESOLVED,
        STORE_LAYOUT_VERSION,
        AlertEvent,
        MetricSample,
        StoreManifest,
    )
    from repro.store.query import StoreQuery
    from repro.store.reports import render_incident_report


def __getattr__(name: str):
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    module = importlib.import_module(f"{__name__}.{module_name}")
    value = getattr(module, name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
