"""Adversarial confounder axes and ground-truth cause labels.

Each axis deliberately manufactures a *spurious* statistical association
between DL cross traffic and the app-layer symptom while the true cause
lives elsewhere (the SNIPPETS.md network-rca-causality design):

- ``correlated_cross`` — a modest DL cross-traffic burst fired at the
  exact onset of every true-cause event (common-cause / coincidence
  confound: the burst co-occurs with the symptom but does not drive it).
- ``lagged_mimic`` — the same burst delayed by ``lag_s``, so naive
  lagged-correlation scans still find a high peak at some lag.
- ``recovery_surge`` — the burst fires when each true-cause event *ends*
  (queued traffic flushing after an outage), i.e. the "cause" series
  rises exactly when the symptom is resolving.
- ``reactive_control`` — an *intervention* confound: a runtime hook
  watches client A's congestion-controller target and injects cross
  traffic whenever the target collapses, so cross traffic is a
  consequence of the symptom, not a cause (reverse causation).
- ``control`` — no injection; marks a scenario for ground-truth
  labelling so clean runs enter the same scored campaign.

This module is a leaf: it must not import ``repro.fleet`` (the scenario
layer imports *us*).  Impairment specs are therefore duck-typed — any
object with ``name`` / ``ul_fades`` / ``dl_bursts`` / ``rrc_releases_s``
attributes works.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

#: Valid values for :attr:`ConfounderSpec.axis`.
CONFOUNDER_AXES: Tuple[str, ...] = (
    "control",
    "correlated_cross",
    "lagged_mimic",
    "recovery_surge",
    "reactive_control",
)

#: Axes whose bursts are derived from the impairment schedule up front.
SCHEDULED_AXES: Tuple[str, ...] = (
    "correlated_cross",
    "lagged_mimic",
    "recovery_surge",
)

#: Cause label a correlation-fooled detector reports under every
#: cross-traffic confounder axis.
SPURIOUS_CAUSE = "Cross Traffic"

#: RNTI of the dedicated confounder UE (distinct from the scripted
#: impairment UE at 49_999 and organic cross traffic at 40_000+).
CONFOUNDER_RNTI = 49_998

#: Nominal RRC outage used to place recovery surges after a scripted
#: release (matches the calibrated commercial-cell ``rrc_outage_us``).
RRC_NOMINAL_OUTAGE_S = 0.3


@dataclass(frozen=True)
class ConfounderSpec:
    """One declarative confounder axis on a scenario.

    Attributes:
        axis: one of :data:`CONFOUNDER_AXES`.
        lag_s: delay between the true-cause anchor and the burst onset.
        duration_s: scheduled burst length.
        prbs: PRB demand of each burst — sized to dominate the
            ``other_prbs`` telemetry series without starving the
            experiment UE (the burst must not *actually* degrade DL).
        trigger_fraction: reactive axis — intervene when client A's GCC
            target drops below this fraction of its running peak.
        hold_s: reactive axis — length of each injected burst.
        warmup_s: reactive axis — ignore the ramp-up phase.
    """

    axis: str
    lag_s: float = 0.0
    duration_s: float = 2.5
    prbs: int = 40
    trigger_fraction: float = 0.8
    hold_s: float = 0.5
    warmup_s: float = 3.0

    def __post_init__(self) -> None:
        if self.axis not in CONFOUNDER_AXES:
            raise ValueError(
                f"unknown confounder axis {self.axis!r}; "
                f"expected one of {CONFOUNDER_AXES}"
            )

    @property
    def needs_ran(self) -> bool:
        """Whether this axis injects RAN-level cross traffic."""
        return self.axis != "control"


#: Cause families on the true causal pathway of each root cause — the
#: Fig. 9 domino structure: a UL fade *causes* aggressive MCS, HARQ and
#: RLC retransmissions, and scheduling backlog; an RRC release freezes
#: the grant loop and builds UL backlog.  A detector attributing to any
#: of these named a mechanism the true cause drives; only an
#: off-pathway family (the injected confounder above all) is wrong.
ACCEPTED_PATHWAYS: dict = {
    "Poor Channel": (
        "Poor Channel",
        "HARQ ReTX",
        "RLC ReTX",
        "UL Scheduling",
    ),
    "RRC State": ("RRC State", "UL Scheduling", "RLC ReTX"),
    "Cross Traffic": ("Cross Traffic", "UL Scheduling"),
    "UL Scheduling": ("UL Scheduling",),
    "HARQ ReTX": ("HARQ ReTX", "RLC ReTX"),
    "RLC ReTX": ("RLC ReTX",),
}


@dataclass(frozen=True)
class GroundTruthLabel:
    """Machine-readable truth the simulator knows about a scenario.

    Attributes:
        cause: true root-cause family (a ``CauseKind`` value, or
            ``"none"`` for clean runs).
        impairment: name of the injected impairment.
        axes: confounder axes active on the scenario.
        spurious: cause labels that are *wrong* but statistically
            tempting under the active axes.
        accepted: cause families on the true causal pathway — an
            attribution to any of these is credited to ``cause`` (see
            :data:`ACCEPTED_PATHWAYS`); ``cause`` itself is always
            included.
        onsets_s: start times of the true-cause events.
    """

    cause: str
    impairment: str
    axes: Tuple[str, ...] = ()
    spurious: Tuple[str, ...] = ()
    accepted: Tuple[str, ...] = ()
    onsets_s: Tuple[float, ...] = ()


def true_cause(impairment) -> Optional[str]:
    """Map an impairment spec to the CauseKind family it exercises."""
    if getattr(impairment, "ul_fades", ()):
        return "Poor Channel"
    if getattr(impairment, "rrc_releases_s", ()):
        return "RRC State"
    if getattr(impairment, "dl_bursts", ()):
        return "Cross Traffic"
    return None


def cause_events_s(impairment) -> Tuple[Tuple[float, float], ...]:
    """(start_s, duration_s) of every true-cause event, sorted."""
    events: List[Tuple[float, float]] = []
    for start, duration, _depth in getattr(impairment, "ul_fades", ()):
        events.append((float(start), float(duration)))
    for release in getattr(impairment, "rrc_releases_s", ()):
        events.append((float(release), RRC_NOMINAL_OUTAGE_S))
    for start, duration, _prbs in getattr(impairment, "dl_bursts", ()):
        events.append((float(start), float(duration)))
    return tuple(sorted(events))


def scheduled_bursts(
    conf: ConfounderSpec, impairment
) -> Tuple[Tuple[int, int, int], ...]:
    """Derive ``(start_us, duration_us, prbs)`` bursts for a scheduled axis."""
    if conf.axis not in SCHEDULED_AXES:
        return ()
    bursts: List[Tuple[int, int, int]] = []
    for start_s, event_dur_s in cause_events_s(impairment):
        anchor = start_s + conf.lag_s
        if conf.axis == "recovery_surge":
            anchor = start_s + event_dur_s + conf.lag_s
        bursts.append(
            (
                int(anchor * 1e6),
                int(conf.duration_s * 1e6),
                int(conf.prbs),
            )
        )
    return tuple(bursts)


def ground_truth_label(impairment, confounders) -> GroundTruthLabel:
    """Build the label ``run_scenario`` stamps onto a SessionOutcome."""
    confounders = tuple(confounders)
    injecting = tuple(c.axis for c in confounders if c.axis != "control")
    cause = true_cause(impairment) or "none"
    return GroundTruthLabel(
        cause=cause,
        impairment=getattr(impairment, "name", "none"),
        axes=tuple(c.axis for c in confounders),
        spurious=(SPURIOUS_CAUSE,) if injecting else (),
        accepted=ACCEPTED_PATHWAYS.get(cause, (cause,)),
        onsets_s=tuple(start for start, _ in cause_events_s(impairment)),
    )


class ReactiveCrossTraffic:
    """Tick hook implementing the ``reactive_control`` axis.

    Watches client A's congestion-controller target each ~100 ms of
    simulated time and, whenever it collapses below
    ``trigger_fraction`` of its running peak, scripts a cross-traffic
    burst onto a dedicated UE.  The injected traffic is therefore a
    *response* to the app-layer symptom — any detector that reads the
    resulting correlation as causal has the arrow backwards.

    Purely deterministic: driven only by simulated state.
    """

    CHECK_INTERVAL_US = 100_000

    def __init__(self, ue, spec: ConfounderSpec) -> None:
        self.ue = ue
        self.spec = spec
        self._next_check_us = int(spec.warmup_s * 1e6)
        self._active_until_us = 0
        self._peak_bps = 0.0
        self.interventions = 0

    def __call__(self, session, now_us: int) -> None:
        if now_us < self._next_check_us:
            return
        self._next_check_us = now_us + self.CHECK_INTERVAL_US
        target = session.client_a.current_target_bps
        if target <= 0.0:
            return
        if target > self._peak_bps:
            self._peak_bps = target
        if now_us < self._active_until_us:
            return
        if target < self.spec.trigger_fraction * self._peak_bps:
            hold_us = int(self.spec.hold_s * 1e6)
            self.ue.scripted_bursts.append((now_us, hold_us, int(self.spec.prbs)))
            self._active_until_us = now_us + hold_us
            self.interventions += 1


def attach_reactive_hook(session, conf: ConfounderSpec, seed: int):
    """Wire a :class:`ReactiveCrossTraffic` hook into a cellular session.

    Appends a silent scripted-only UE to the DL cross-traffic population
    and registers the hook on the session's tick loop.  Returns the hook
    (exposed for tests).
    """
    from repro.mac.crosstraffic import CrossTrafficUe

    ue = CrossTrafficUe(
        rnti=CONFOUNDER_RNTI,
        mean_on_ms=0.0,  # purely scripted
        mean_prb_demand=0.0,
        seed=seed,
    )
    session.access_a.ran.dl.cross.ues.append(ue)
    hook = ReactiveCrossTraffic(ue, conf)
    session.tick_hooks.append(hook)
    return hook
