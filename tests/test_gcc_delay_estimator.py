"""GCC delay-based estimator: inter-arrival, trendline, overuse."""

import numpy as np
from hypothesis import given, strategies as st

from repro.rtc.gcc.interarrival import InterArrival
from repro.rtc.gcc.overuse import BandwidthUsage, OveruseDetector
from repro.rtc.gcc.trendline import TrendlineEstimator


# -- InterArrival -----------------------------------------------------------------


def test_groups_by_burst_window():
    ia = InterArrival(burst_window_us=5_000)
    # Four bursts 20 ms apart; each burst has 3 packets within 2 ms.
    # A group only completes when the next one starts, and the first
    # completed group has no predecessor, so 4 bursts -> 2 deltas.
    deltas = []
    for burst in range(4):
        base = burst * 20_000
        for k in range(3):
            delta = ia.add_packet(base + k * 1_000, base + 5_000 + k * 1_000, 1200)
            if delta is not None:
                deltas.append(delta)
    assert len(deltas) == 2
    for delta in deltas:
        assert delta.send_delta_us == 20_000
        assert delta.arrival_delta_us == 20_000
        assert delta.delay_variation_us == 0


def test_queue_growth_positive_variation():
    ia = InterArrival()
    variations = []
    # Each successive burst arrives 3 ms later than its send spacing.
    for burst in range(5):
        send = burst * 20_000
        arrival = send + 5_000 + burst * 3_000
        delta = ia.add_packet(send, arrival, 1200)
        if delta is not None:
            variations.append(delta.delay_variation_us)
    assert all(v == 3_000 for v in variations)


def test_add_batch_sorts_by_send_time():
    ia = InterArrival()
    packets = [
        (60_000, 66_000, 1200),
        (40_000, 46_000, 1200),
        (0, 5_000, 1200),
        (20_000, 25_000, 1200),
    ]
    deltas = ia.add_batch(packets)
    assert len(deltas) == 2
    assert all(d.send_delta_us == 20_000 for d in deltas)


# -- Trendline ----------------------------------------------------------------------


def test_trendline_positive_for_growing_delay():
    estimator = TrendlineEstimator()
    for i in range(40):
        estimator.update(2_000, arrival_us=i * 20_000)  # +2 ms per group
    assert estimator.trend > 0
    assert estimator.slope_ms_per_s > 0
    assert estimator.modified_trend > 0


def test_trendline_negative_for_draining_queue():
    estimator = TrendlineEstimator()
    for i in range(40):
        estimator.update(-1_500, arrival_us=i * 20_000)
    assert estimator.trend < 0


def test_trendline_near_zero_for_stable_delay():
    estimator = TrendlineEstimator()
    rng = np.random.default_rng(1)
    for i in range(60):
        jitter = int(rng.normal(0, 300))
        estimator.update(jitter, arrival_us=i * 20_000)
    assert abs(estimator.slope_ms_per_s) < 20


@given(scale=st.integers(min_value=1, max_value=10))
def test_trendline_scale_invariant_sign(scale):
    estimator = TrendlineEstimator()
    for i in range(30):
        estimator.update(1_000 * scale, arrival_us=i * 20_000)
    assert estimator.trend > 0


# -- Overuse detector --------------------------------------------------------------------


def test_sustained_positive_trend_triggers_overuse():
    detector = OveruseDetector()
    state = BandwidthUsage.NORMAL
    for i in range(30):
        state = detector.detect(modified_trend=40.0, now_us=i * 20_000)
    assert state is BandwidthUsage.OVERUSE


def test_negative_trend_underuse():
    detector = OveruseDetector()
    state = detector.detect(modified_trend=-40.0, now_us=0)
    assert state is BandwidthUsage.UNDERUSE


def test_small_trend_normal():
    detector = OveruseDetector()
    for i in range(20):
        state = detector.detect(modified_trend=2.0, now_us=i * 20_000)
    assert state is BandwidthUsage.NORMAL


def test_single_spike_does_not_trigger():
    """Overuse needs persistence (> 10 ms over threshold)."""
    detector = OveruseDetector()
    state = detector.detect(modified_trend=40.0, now_us=0)
    assert state is not BandwidthUsage.OVERUSE


def test_threshold_adapts_upward_under_repeated_trend():
    detector = OveruseDetector()
    initial = detector.threshold
    for i in range(200):
        detector.detect(modified_trend=detector.threshold + 5.0, now_us=i * 20_000)
    assert detector.threshold > initial


def test_threshold_bounded():
    detector = OveruseDetector()
    for i in range(2000):
        detector.detect(modified_trend=1000.0, now_us=i * 20_000)
    assert detector.threshold <= detector.max_threshold
    detector2 = OveruseDetector()
    for i in range(2000):
        detector2.detect(modified_trend=0.0, now_us=i * 20_000)
    assert detector2.threshold >= detector2.min_threshold
