"""ASCII dashboard for live fleet snapshots (`repro watch`).

Renders a :class:`~repro.live.aggregator.FleetSnapshot` through the
same :mod:`repro.analysis.ascii` table helpers every other report in
the repo uses, so the live view stays visually comparable with the
offline fleet report and the paper-figure benchmarks.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterator, List, Optional, Sequence

from repro.analysis.ascii import render_table
from repro.live.aggregator import FleetSnapshot

#: Sessions shown individually before the table is elided.
MAX_SESSION_ROWS = 16

#: Snapshots the `watch --follow` trend ring keeps by default.
TREND_HISTORY = 64

#: Chains shown in the trend section.
TREND_CHAINS = 5

_SPARK_CHARS = "▁▂▃▄▅▆▇█"


class SnapshotHistory:
    """Bounded ring of recent fleet snapshots (`watch --follow`).

    Keeps the last *maxlen* snapshots so the trend view can difference
    consecutive rollups into per-interval deltas without the watcher
    ever re-reading history — memory stays O(maxlen) no matter how long
    the watch runs.
    """

    def __init__(self, maxlen: int = TREND_HISTORY) -> None:
        if maxlen < 2:
            raise ValueError("need at least two snapshots for a trend")
        self._ring: Deque[FleetSnapshot] = deque(maxlen=maxlen)

    def add(self, snapshot: FleetSnapshot) -> None:
        self._ring.append(snapshot)

    def __len__(self) -> int:
        return len(self._ring)

    def __iter__(self) -> Iterator[FleetSnapshot]:
        return iter(self._ring)

    @property
    def latest(self) -> Optional[FleetSnapshot]:
        return self._ring[-1] if self._ring else None


def sparkline(values: Sequence[float]) -> str:
    """Render values as a unicode block sparkline (empty input → '')."""
    if not values:
        return ""
    peak = max(values)
    if peak <= 0:
        return _SPARK_CHARS[0] * len(values)
    top = len(_SPARK_CHARS) - 1
    return "".join(
        _SPARK_CHARS[min(top, int(round(max(v, 0) / peak * top)))]
        for v in values
    )


def _deltas(values: Sequence[float]) -> List[float]:
    return [b - a for a, b in zip(values, values[1:])]


def render_trend(
    history: SnapshotHistory, max_chains: int = TREND_CHAINS
) -> str:
    """Trend section: per-interval deltas over the snapshot ring.

    Differences consecutive snapshots' cumulative counters (windows,
    detections, per-chain episode totals) into per-interval activity
    and renders each series as a sparkline, newest to the right.
    """
    snapshots = list(history)
    if len(snapshots) < 2:
        return "Trend: (waiting for a second snapshot)"
    window_deltas = _deltas([s.windows for s in snapshots])
    detected_deltas = _deltas([s.detected_windows for s in snapshots])
    lines = [
        f"Trend (last {len(snapshots)} snapshots, per interval)",
        f"  windows   {sparkline(window_deltas)}  "
        f"{window_deltas[-1]:+g} last",
        f"  detected  {sparkline(detected_deltas)}  "
        f"{detected_deltas[-1]:+g} last",
    ]
    latest_totals = snapshots[-1].chain_totals
    ranked = sorted(latest_totals.items(), key=lambda kv: (-kv[1], kv[0]))
    for chain, total in ranked[:max_chains]:
        series = _deltas([s.chain_totals.get(chain, 0) for s in snapshots])
        lines.append(
            f"  {sparkline(series)}  {series[-1]:+g} last "
            f"({total} episodes) {chain}"
        )
    if not ranked:
        lines.append("  (no chain episodes yet)")
    return "\n".join(lines)


def render_snapshot(
    snapshot: FleetSnapshot, max_sessions: int = MAX_SESSION_ROWS
) -> str:
    """Render one fleet snapshot as a terminal dashboard block."""
    sections: List[str] = []
    sections.append(
        f"live fleet @ {snapshot.wall_s:.1f}s wall (snapshot "
        f"#{snapshot.seq}): {snapshot.n_sessions} sessions "
        f"({snapshot.n_running} running, {snapshot.n_done} done, "
        f"{snapshot.n_evicted} evicted, {snapshot.n_failed} failed), "
        f"{snapshot.total_minutes:.1f} telemetry min processed"
    )
    sections.append(
        f"windows: {snapshot.windows} completed, "
        f"{snapshot.detected_windows} with causal chains; "
        f"degradation events/min: "
        f"{snapshot.degradation_events_per_min:.2f}; "
        f"lag events (dropped records): {snapshot.lag_events}"
    )

    if snapshot.top_chains:
        sections.append(
            "Top root causes fleet-wide (episodes/min)\n"
            + render_table(
                ["chain", "per-min"],
                [[chain, rate] for chain, rate in snapshot.top_chains],
                width=10,
            )
        )
    else:
        sections.append("Top root causes fleet-wide: (no detections yet)")

    if snapshot.cause_rates:
        sections.append(
            "Causes / consequences per minute\n"
            + render_table(
                ["event", "per-min"],
                [
                    [name, rate]
                    for name, rate in list(snapshot.cause_rates.items())
                    + list(snapshot.consequence_rates.items())
                ],
                width=10,
            )
        )

    if snapshot.health:
        # Pipeline health piggybacked on the snapshot by the producer
        # (LiveRcaService._health, or the cluster coordinator's worker/
        # queue gauges) — pre-obs snapshots simply have no pane.
        sections.append(
            "Fleet health\n"
            + render_table(
                ["metric", "value"],
                [
                    [name, f"{value:.2f}"]
                    for name, value in sorted(snapshot.health.items())
                ],
                width=14,
            )
        )

    rows = []
    for session in snapshot.sessions[:max_sessions]:
        rows.append(
            [
                session.session_id,
                session.state,
                f"{session.watermark_s:.1f}",
                f"{session.realtime_factor:.0f}x",
                session.lag_events,
                session.buffered_records,
                session.windows,
                session.detected_windows,
            ]
        )
    table = render_table(
        ["session", "state", "t[s]", "rtf", "lag", "buf", "win", "det"],
        rows,
        width=9,
    )
    hidden = len(snapshot.sessions) - max_sessions
    if hidden > 0:
        table += f"\n... (+{hidden} more sessions)"
    sections.append("Sessions\n" + table)

    return "\n\n".join(sections)


__all__ = [
    "MAX_SESSION_ROWS",
    "SnapshotHistory",
    "TREND_CHAINS",
    "TREND_HISTORY",
    "render_snapshot",
    "render_trend",
    "sparkline",
]
