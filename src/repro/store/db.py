"""The embedded historical RCA store: segments + a rebuildable index.

Layout of one store directory::

    DIR/
      manifest.json          # stamped store_manifest artifact
      index.sqlite           # derived rollup index (rebuildable)
      segments/
        p<partition>/        # partition = int(ts // partition_s)
          outcomes.jsonl     # session_outcome envelopes
          snapshots.jsonl    # fleet_snapshot envelopes
          metrics.jsonl      # metric_sample envelopes
          alerts.jsonl       # alert_event envelopes
          spans.jsonl        # trace_span envelopes

The JSONL segments are the source of truth: append-only, one
self-describing envelope per line (``{"kind", "v", "data"}`` where
``data`` is the ``repro.schema`` wire dict), partitioned by ingest
timestamp so retention is a directory delete, never a rewrite.  The
sqlite file is only an index over them — :meth:`RcaStore.reindex`
rebuilds it from segments alone, and every query the store answers
(:class:`~repro.store.query.StoreQuery`) reads sqlite, never JSONL.

Everything crossing this boundary goes through the schema codecs:
ingest encodes via ``to_wire`` and reindex decodes via ``from_wire``,
so a foreign-schema line is a versioned diagnostic, not a KeyError.
"""

from __future__ import annotations

import json
import os
import sqlite3
import time
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro import obs
from repro.obs.trace import TraceSpan
from repro.errors import SchemaError, SchemaVersionError, TelemetryError
from repro.fleet.executor import SessionOutcome, iter_outcomes
from repro.live.aggregator import FleetSnapshot
from repro.store.model import (
    STORE_LAYOUT_VERSION,
    AlertEvent,
    MetricSample,
    StoreManifest,
)

#: Counter of rows added to the sqlite index, labelled by table.
ROWS_METRIC = "repro_store_rows_total"

#: Histogram of store ingest calls, labelled by op.
INGEST_METRIC = "repro_store_ingest_seconds"

_SEGMENT_FILES = {
    "session_outcome": "outcomes.jsonl",
    "fleet_snapshot": "snapshots.jsonl",
    "metric_sample": "metrics.jsonl",
    "alert_event": "alerts.jsonl",
    "trace_span": "spans.jsonl",
}

_DDL = """
CREATE TABLE IF NOT EXISTS outcomes (
    id INTEGER PRIMARY KEY,
    ts REAL NOT NULL,
    scenario TEXT NOT NULL,
    profile TEXT NOT NULL,
    impairment TEXT NOT NULL,
    seed TEXT NOT NULL,  -- derive_seed() yields ints wider than 64 bits
    duration_s REAL NOT NULL,
    n_windows INTEGER NOT NULL,
    n_detected_windows INTEGER NOT NULL,
    degradation_events_per_min REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_outcomes_ts ON outcomes(ts);
CREATE INDEX IF NOT EXISTS idx_outcomes_profile ON outcomes(profile, ts);
CREATE INDEX IF NOT EXISTS idx_outcomes_impairment
    ON outcomes(impairment, ts);

CREATE TABLE IF NOT EXISTS episodes (
    outcome_id INTEGER NOT NULL,
    ts REAL NOT NULL,
    kind TEXT NOT NULL,
    name TEXT NOT NULL,
    count REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_episodes_name ON episodes(kind, name, ts);
CREATE INDEX IF NOT EXISTS idx_episodes_ts ON episodes(kind, ts);

CREATE TABLE IF NOT EXISTS qoe_samples (
    outcome_id INTEGER NOT NULL,
    ts REAL NOT NULL,
    metric TEXT NOT NULL,
    value REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_qoe ON qoe_samples(metric, ts);

CREATE TABLE IF NOT EXISTS snapshots (
    ts REAL NOT NULL,
    seq INTEGER NOT NULL,
    n_sessions INTEGER NOT NULL,
    n_running INTEGER NOT NULL,
    windows INTEGER NOT NULL,
    detected_windows INTEGER NOT NULL,
    degradation_events_per_min REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_snapshots_ts ON snapshots(ts);

CREATE TABLE IF NOT EXISTS snapshot_chains (
    ts REAL NOT NULL,
    chain TEXT NOT NULL,
    total REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_snapshot_chains
    ON snapshot_chains(chain, ts);

CREATE TABLE IF NOT EXISTS metric_samples (
    ts REAL NOT NULL,
    name TEXT NOT NULL,
    labels TEXT NOT NULL,
    value REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_metric_samples
    ON metric_samples(name, ts);

CREATE TABLE IF NOT EXISTS trace_spans (
    ts REAL NOT NULL,  -- ingest stamp: the partition/retention axis
    trace_id TEXT NOT NULL,
    span_id TEXT NOT NULL,
    parent_span_id TEXT NOT NULL,
    name TEXT NOT NULL,
    service TEXT NOT NULL,
    campaign_id TEXT NOT NULL,
    scenario TEXT NOT NULL,
    status TEXT NOT NULL,
    start_ts REAL NOT NULL,  -- the span's own wall clock
    duration_s REAL NOT NULL,
    attrs TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_trace_spans_campaign
    ON trace_spans(campaign_id, ts);
CREATE INDEX IF NOT EXISTS idx_trace_spans_trace
    ON trace_spans(trace_id, start_ts);

CREATE TABLE IF NOT EXISTS alerts (
    ts REAL NOT NULL,
    rule TEXT NOT NULL,
    state TEXT NOT NULL,
    signal TEXT NOT NULL,
    value REAL NOT NULL,
    threshold REAL NOT NULL,
    window_s REAL NOT NULL,
    severity TEXT NOT NULL,
    message TEXT NOT NULL,
    labels TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_alerts_ts ON alerts(ts);
CREATE INDEX IF NOT EXISTS idx_alerts_rule ON alerts(rule, ts);
"""

_TABLES = (
    "outcomes",
    "episodes",
    "qoe_samples",
    "snapshots",
    "snapshot_chains",
    "metric_samples",
    "alerts",
    "trace_spans",
)


def _rows_counter() -> obs.Counter:
    return obs.get_registry().counter(
        ROWS_METRIC, "Rows added to the store index, by table."
    )


def _ingest_histogram() -> obs.Histogram:
    return obs.get_registry().histogram(
        INGEST_METRIC, "Latency of store ingest calls, by op."
    )


class _timed_ingest:
    """Time one ingest call into the store's ingest histogram."""

    __slots__ = ("op", "_t0")

    def __init__(self, op: str) -> None:
        self.op = op

    def __enter__(self) -> "_timed_ingest":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc: Any) -> None:
        _ingest_histogram().observe(
            time.perf_counter() - self._t0, op=self.op
        )


class RcaStore:
    """One historical store directory: open, ingest, index, compact."""

    def __init__(self, root: str, manifest: StoreManifest) -> None:
        self.root = os.path.abspath(root)
        self.manifest = manifest
        self._conn = sqlite3.connect(os.path.join(self.root, "index.sqlite"))
        self._conn.executescript(_DDL)
        self._conn.commit()

    # -- lifecycle ---------------------------------------------------------

    @classmethod
    def open(
        cls,
        root: str,
        *,
        create: bool = True,
        partition_s: float = 86400.0,
    ) -> "RcaStore":
        """Open (by default creating) a store directory.

        A manifest written by an incompatible layout fails here with a
        versioned diagnostic — never by silently mixing layouts.
        """
        manifest_path = os.path.join(root, "manifest.json")
        if os.path.exists(manifest_path):
            with open(manifest_path) as handle:
                try:
                    data = json.load(handle)
                except json.JSONDecodeError as exc:
                    raise SchemaError(
                        f"{manifest_path}: undecodable store manifest: {exc}"
                    )
            manifest = StoreManifest.from_json(data)
            if manifest.layout != STORE_LAYOUT_VERSION:
                raise SchemaVersionError(
                    manifest.layout,
                    STORE_LAYOUT_VERSION,
                    where=f"{manifest_path} (store layout)",
                )
            return cls(root, manifest)
        if not create:
            raise TelemetryError(f"{root}: not a store (no manifest.json)")
        os.makedirs(os.path.join(root, "segments"), exist_ok=True)
        manifest = StoreManifest(
            layout=STORE_LAYOUT_VERSION,
            created_ts=time.time(),
            partition_s=float(partition_s),
        )
        tmp = f"{manifest_path}.tmp.{os.getpid()}"
        with open(tmp, "w") as handle:
            json.dump(manifest.to_json(), handle, sort_keys=True)
        os.replace(tmp, manifest_path)
        return cls(root, manifest)

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "RcaStore":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- segment append ----------------------------------------------------

    def partition_of(self, ts: float) -> int:
        return int(ts // self.manifest.partition_s)

    def _partition_dir(self, ts: float) -> str:
        path = os.path.join(
            self.root, "segments", f"p{self.partition_of(ts)}"
        )
        os.makedirs(path, exist_ok=True)
        return path

    def _append(self, kind: str, ts: float, wire: Dict[str, Any]) -> None:
        from repro.schema import SCHEMA_VERSION

        envelope = {"kind": kind, "v": SCHEMA_VERSION, "ts": ts, "data": wire}
        path = os.path.join(self._partition_dir(ts), _SEGMENT_FILES[kind])
        with open(path, "a") as handle:
            json.dump(envelope, handle, sort_keys=True)
            handle.write("\n")

    # -- ingest ------------------------------------------------------------

    def _index_outcome(
        self, cur: sqlite3.Cursor, outcome: SessionOutcome, when: float
    ) -> None:
        counter = _rows_counter()
        cur.execute(
            "INSERT INTO outcomes (ts, scenario, profile, impairment,"
            " seed, duration_s, n_windows, n_detected_windows,"
            " degradation_events_per_min)"
            " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                when,
                outcome.scenario,
                outcome.profile,
                outcome.impairment,
                str(outcome.seed),
                outcome.duration_s,
                outcome.n_windows,
                outcome.n_detected_windows,
                outcome.degradation_events_per_min,
            ),
        )
        outcome_id = cur.lastrowid
        counter.inc(table="outcomes")
        episode_rows = [
            (outcome_id, when, kind, name, float(count))
            for kind, counts in (
                ("chain", outcome.chain_counts),
                ("cause", outcome.cause_counts),
                ("consequence", outcome.consequence_counts),
            )
            for name, count in counts.items()
        ]
        cur.executemany(
            "INSERT INTO episodes (outcome_id, ts, kind, name, count)"
            " VALUES (?, ?, ?, ?, ?)",
            episode_rows,
        )
        counter.inc(len(episode_rows), table="episodes")
        qoe_rows = [
            (outcome_id, when, metric, float(value))
            for metric, value in outcome.qoe.items()
        ]
        cur.executemany(
            "INSERT INTO qoe_samples (outcome_id, ts, metric, value)"
            " VALUES (?, ?, ?, ?)",
            qoe_rows,
        )
        counter.inc(len(qoe_rows), table="qoe_samples")

    def ingest_outcomes(
        self,
        outcomes: Iterable[SessionOutcome],
        *,
        ts: Optional[float] = None,
    ) -> int:
        """Ingest session outcomes stamped at *ts* (default: now).

        Campaign outcomes carry no wall-clock of their own — the ingest
        time is the store's time axis, and pinning it makes partition
        assignment and windowed queries deterministic in tests.
        """
        when = time.time() if ts is None else float(ts)
        with _timed_ingest("outcomes"):
            cur = self._conn.cursor()
            n = 0
            for outcome in outcomes:
                self._append("session_outcome", when, outcome.to_json())
                self._index_outcome(cur, outcome, when)
                n += 1
            self._conn.commit()
        return n

    def ingest_outcomes_file(
        self,
        path: str,
        *,
        ts: Optional[float] = None,
        tolerant: bool = False,
    ) -> Dict[str, int]:
        """Ingest a ``fleet run`` outcomes JSONL, fleet-report semantics.

        Tolerant mode streams every intact outcome and counts damage in
        the returned stats (``skipped_lines`` / ``missing_outcomes``);
        strict mode raises on the first undecodable record.  A major
        schema mismatch in the fleet header raises
        :class:`~repro.errors.SchemaVersionError` in both modes.
        """
        stats: Dict[str, int] = {}
        ingested = self.ingest_outcomes(
            iter_outcomes(path, tolerant=tolerant, stats=stats), ts=ts
        )
        stats["ingested"] = ingested
        return stats

    def _index_snapshot(
        self, cur: sqlite3.Cursor, snapshot: FleetSnapshot, when: float
    ) -> None:
        counter = _rows_counter()
        cur.execute(
            "INSERT INTO snapshots (ts, seq, n_sessions, n_running,"
            " windows, detected_windows, degradation_events_per_min)"
            " VALUES (?, ?, ?, ?, ?, ?, ?)",
            (
                when,
                snapshot.seq,
                snapshot.n_sessions,
                snapshot.n_running,
                snapshot.windows,
                snapshot.detected_windows,
                snapshot.degradation_events_per_min,
            ),
        )
        counter.inc(table="snapshots")
        chain_rows = [
            (when, chain, float(total))
            for chain, total in snapshot.chain_totals.items()
        ]
        cur.executemany(
            "INSERT INTO snapshot_chains (ts, chain, total) VALUES (?, ?, ?)",
            chain_rows,
        )
        counter.inc(len(chain_rows), table="snapshot_chains")

    def ingest_snapshot(
        self, snapshot: FleetSnapshot, *, ts: Optional[float] = None
    ) -> None:
        """Tee one fleet snapshot into the store (live/coordinator path)."""
        when = time.time() if ts is None else float(ts)
        with _timed_ingest("snapshot"):
            self._append("fleet_snapshot", when, snapshot.to_json())
            self._index_snapshot(self._conn.cursor(), snapshot, when)
            self._conn.commit()

    def _index_metric_sample(
        self, cur: sqlite3.Cursor, sample: MetricSample
    ) -> None:
        cur.execute(
            "INSERT INTO metric_samples (ts, name, labels, value)"
            " VALUES (?, ?, ?, ?)",
            (
                sample.ts,
                sample.name,
                json.dumps(sample.labels, sort_keys=True),
                sample.value,
            ),
        )
        _rows_counter().inc(table="metric_samples")

    def ingest_metric_samples(
        self, samples: Iterable[MetricSample]
    ) -> int:
        with _timed_ingest("metrics"):
            cur = self._conn.cursor()
            n = 0
            for sample in samples:
                self._append("metric_sample", sample.ts, sample.to_json())
                self._index_metric_sample(cur, sample)
                n += 1
            self._conn.commit()
        return n

    def ingest_prom_text(
        self, text: str, *, ts: Optional[float] = None
    ) -> int:
        """Ingest one Prometheus exposition snapshot (point-in-time)."""
        when = time.time() if ts is None else float(ts)
        return self.ingest_metric_samples(
            MetricSample(ts=when, name=name, value=value, labels=labels)
            for name, labels, value in obs.parse_prom_samples(text)
        )

    def _index_alert(self, cur: sqlite3.Cursor, event: AlertEvent) -> None:
        cur.execute(
            "INSERT INTO alerts (ts, rule, state, signal, value, threshold,"
            " window_s, severity, message, labels)"
            " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                event.ts,
                event.rule,
                event.state,
                event.signal,
                event.value,
                event.threshold,
                event.window_s,
                event.severity,
                event.message,
                json.dumps(event.labels, sort_keys=True),
            ),
        )
        _rows_counter().inc(table="alerts")

    def record_alert(self, event: AlertEvent) -> None:
        with _timed_ingest("alert"):
            self._append("alert_event", event.ts, event.to_json())
            self._index_alert(self._conn.cursor(), event)
            self._conn.commit()

    def _index_trace_span(
        self, cur: sqlite3.Cursor, span: TraceSpan, when: float
    ) -> None:
        cur.execute(
            "INSERT INTO trace_spans (ts, trace_id, span_id,"
            " parent_span_id, name, service, campaign_id, scenario,"
            " status, start_ts, duration_s, attrs)"
            " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                when,
                span.trace_id,
                span.span_id,
                span.parent_span_id,
                span.name,
                span.service,
                span.campaign_id,
                span.scenario,
                span.status,
                span.ts_s,
                span.duration_s,
                json.dumps(span.attrs, sort_keys=True, default=str),
            ),
        )
        _rows_counter().inc(table="trace_spans")

    def ingest_trace_spans(
        self,
        spans: Iterable[TraceSpan],
        *,
        ts: Optional[float] = None,
    ) -> int:
        """Ingest distributed-trace spans stamped at *ts* (default: now).

        Like outcomes, a whole campaign's spans land under one ingest
        stamp so retention drops a campaign's trace atomically with its
        partition; the span's own wall clock lives in ``start_ts``.
        """
        when = time.time() if ts is None else float(ts)
        with _timed_ingest("trace_spans"):
            cur = self._conn.cursor()
            n = 0
            for span in spans:
                self._append("trace_span", when, span.to_json())
                self._index_trace_span(cur, span, when)
                n += 1
            self._conn.commit()
        return n

    # -- index maintenance -------------------------------------------------

    def rows_total(self) -> Dict[str, int]:
        """Row count per index table (the ``store query --totals`` view)."""
        out: Dict[str, int] = {}
        for table in _TABLES:
            row = self._conn.execute(
                f"SELECT COUNT(*) FROM {table}"
            ).fetchone()
            out[table] = int(row[0])
        return out

    def _partitions(self) -> List[Tuple[int, str]]:
        seg_root = os.path.join(self.root, "segments")
        found: List[Tuple[int, str]] = []
        if not os.path.isdir(seg_root):
            return found
        for entry in os.listdir(seg_root):
            if entry.startswith("p"):
                try:
                    pid = int(entry[1:])
                except ValueError:
                    continue
                found.append((pid, os.path.join(seg_root, entry)))
        return sorted(found)

    def reindex(self) -> Dict[str, int]:
        """Rebuild the sqlite index from the JSONL segments alone.

        The recovery path for a lost or corrupt ``index.sqlite``: every
        envelope decodes back through its schema codec, so a segment
        written by a newer major schema fails loudly here rather than
        producing a silently wrong index.
        """
        from repro.schema import check_schema_version, from_wire

        cur = self._conn.cursor()
        for table in _TABLES:
            cur.execute(f"DELETE FROM {table}")
        self._conn.commit()
        counts = {
            "outcomes": 0,
            "snapshots": 0,
            "metrics": 0,
            "alerts": 0,
            "trace_spans": 0,
        }
        for pid, pdir in self._partitions():
            base_ts = pid * self.manifest.partition_s
            for kind, filename in _SEGMENT_FILES.items():
                path = os.path.join(pdir, filename)
                if not os.path.exists(path):
                    continue
                with open(path) as handle:
                    for line in handle:
                        line = line.strip()
                        if not line:
                            continue
                        envelope = json.loads(line)
                        check_schema_version(
                            envelope.get("v"), where=f"{path} (envelope)"
                        )
                        obj = from_wire(kind, envelope["data"])
                        when = float(envelope.get("ts", base_ts))
                        if kind == "session_outcome":
                            self._index_outcome(cur, obj, when)
                            counts["outcomes"] += 1
                        elif kind == "fleet_snapshot":
                            self._index_snapshot(cur, obj, when)
                            counts["snapshots"] += 1
                        elif kind == "metric_sample":
                            self._index_metric_sample(cur, obj)
                            counts["metrics"] += 1
                        elif kind == "alert_event":
                            self._index_alert(cur, obj)
                            counts["alerts"] += 1
                        elif kind == "trace_span":
                            self._index_trace_span(cur, obj, when)
                            counts["trace_spans"] += 1
        self._conn.commit()
        return counts

    # -- retention ---------------------------------------------------------

    def size_bytes(self) -> int:
        total = 0
        for _pid, pdir in self._partitions():
            for name in os.listdir(pdir):
                total += os.path.getsize(os.path.join(pdir, name))
        return total

    def compact(
        self,
        *,
        max_age_s: Optional[float] = None,
        max_bytes: Optional[int] = None,
        now: Optional[float] = None,
    ) -> Dict[str, int]:
        """Bound the store: drop whole partitions, oldest first.

        ``max_age_s`` removes every partition entirely older than the
        cutoff; ``max_bytes`` then keeps dropping the oldest remaining
        partition until segment bytes fit (the newest partition always
        survives).  Index rows of dropped partitions are deleted in the
        same pass, so queries and segments stay consistent.
        """
        when = time.time() if now is None else float(now)
        partitions = self._partitions()
        drop: List[Tuple[int, str]] = []
        if max_age_s is not None:
            cutoff_pid = self.partition_of(when - max_age_s)
            while partitions and partitions[0][0] < cutoff_pid:
                drop.append(partitions.pop(0))
        if max_bytes is not None:

            def psize(pdir: str) -> int:
                return sum(
                    os.path.getsize(os.path.join(pdir, name))
                    for name in os.listdir(pdir)
                )

            total = sum(psize(pdir) for _pid, pdir in partitions)
            while total > max_bytes and len(partitions) > 1:
                pid, pdir = partitions.pop(0)
                total -= psize(pdir)
                drop.append((pid, pdir))
        bytes_removed = 0
        rows_deleted = 0
        cur = self._conn.cursor()
        for pid, pdir in drop:
            lo = pid * self.manifest.partition_s
            hi = lo + self.manifest.partition_s
            for name in os.listdir(pdir):
                path = os.path.join(pdir, name)
                bytes_removed += os.path.getsize(path)
                os.remove(path)
            os.rmdir(pdir)
            for table in _TABLES:
                result = cur.execute(
                    f"DELETE FROM {table} WHERE ts >= ? AND ts < ?",
                    (lo, hi),
                )
                rows_deleted += result.rowcount
        self._conn.commit()
        if drop:
            self._conn.execute("VACUUM")
        return {
            "partitions_removed": len(drop),
            "bytes_removed": bytes_removed,
            "rows_deleted": rows_deleted,
        }


__all__ = ["INGEST_METRIC", "ROWS_METRIC", "RcaStore"]
