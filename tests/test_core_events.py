"""The Table 5 event conditions on synthetic windows."""

import numpy as np

from repro.core.events import EventConfig, build_registry

CONFIG = EventConfig()
REGISTRY = build_registry()

N = 100  # 5 s window at 50 ms bins


def _window(**overrides):
    """A quiet window; override individual series."""
    window = {}
    for role in ("local", "remote"):
        window[f"{role}_inbound_fps"] = np.full(N, 30.0)
        window[f"{role}_outbound_fps"] = np.full(N, 30.0)
        window[f"{role}_outbound_resolution_p"] = np.full(N, 540.0)
        window[f"{role}_inbound_resolution_p"] = np.full(N, 540.0)
        window[f"{role}_video_jitter_buffer_ms"] = np.full(N, 80.0)
        window[f"{role}_audio_jitter_buffer_ms"] = np.full(N, 50.0)
        window[f"{role}_target_bitrate_bps"] = np.full(N, 2e6)
        window[f"{role}_pushback_bitrate_bps"] = np.full(N, 2e6)
        window[f"{role}_gcc_state"] = np.zeros(N)
        window[f"{role}_outstanding_bytes"] = np.full(N, 10_000.0)
        window[f"{role}_congestion_window_bytes"] = np.full(N, 50_000.0)
    for direction in ("ul", "dl"):
        window[f"{direction}_packet_delay_ms"] = np.full(N, 25.0)
        window[f"{direction}_tbs_bits"] = np.full(N, 50_000.0)
        window[f"{direction}_tbs_bitrate_bps"] = np.full(N, 5e6)
        window[f"{direction}_app_bitrate_bps"] = np.full(N, 2e6)
        window[f"{direction}_exp_prbs"] = np.full(N, 20.0)
        window[f"{direction}_other_prbs"] = np.zeros(N)
        window[f"{direction}_mcs_mean"] = np.full(N, 22.0)
        window[f"{direction}_harq_retx"] = np.zeros(N)
        window[f"{direction}_rlc_retx"] = np.zeros(N)
        window[f"{direction}_scheduled"] = np.ones(N)
        window[f"{direction}_rnti"] = np.full(N, 17_000.0)
    window["rrc_events"] = np.zeros(N)
    window.update(overrides)
    return window


def _fire(name, window):
    return REGISTRY[name](window, CONFIG)


def test_quiet_window_fires_nothing_interesting():
    window = _window()
    firing = [name for name in REGISTRY if _fire(name, window)]
    # Only the trivially-true UL scheduling condition fires.
    assert firing == ["ul_scheduling"]


def test_framerate_drop_requires_order():
    fps = np.full(N, 30.0)
    fps[60:] = 20.0
    window = _window(local_inbound_fps=fps)
    assert _fire("local_inbound_framerate_down", window)
    # Reverse order (recovery) must not fire.
    window = _window(local_inbound_fps=fps[::-1].copy())
    assert not _fire("local_inbound_framerate_down", window)


def test_resolution_drop():
    resolution = np.full(N, 540.0)
    resolution[50:] = 360.0
    window = _window(local_outbound_resolution_p=resolution)
    assert _fire("local_outbound_resolution_down", window)


def test_jitter_buffer_drain():
    jb = np.full(N, 80.0)
    jb[70] = 0.0
    window = _window(local_video_jitter_buffer_ms=jb)
    assert _fire("local_jitter_buffer_drain", window)


def test_target_bitrate_down():
    target = np.full(N, 2e6)
    target[50:] = 1.2e6
    window = _window(local_target_bitrate_bps=target)
    assert _fire("local_target_bitrate_down", window)


def test_gcc_overuse():
    state = np.zeros(N)
    state[10] = 1.0
    window = _window(remote_gcc_state=state)
    assert _fire("remote_gcc_overuse", window)


def test_cwnd_full():
    outstanding = np.full(N, 10_000.0)
    outstanding[20:] = 80_000.0
    window = _window(local_outstanding_bytes=outstanding)
    assert _fire("local_cwnd_full", window)
    assert _fire("local_outstanding_bytes_up", window)


def test_pushback_neq_target():
    pushback = np.full(N, 2e6)
    pushback[40:] = 1e6
    window = _window(local_pushback_bitrate_bps=pushback)
    assert _fire("local_pushback_neq_target", window)
    assert _fire("local_pushback_rate_down", window)


def test_delay_up_requires_magnitude():
    ramp = np.linspace(20, 60, N)  # uptrend but below 80 ms
    window = _window(ul_packet_delay_ms=ramp)
    assert not _fire("ul_delay_up", window)
    surge = np.linspace(20, 200, N)
    window = _window(ul_packet_delay_ms=surge)
    assert _fire("ul_delay_up", window)


def test_tbs_down_order_matters():
    tbs = np.full(N, 50_000.0)
    tbs[60:] = 20_000.0
    window = _window(dl_tbs_bits=tbs)
    assert _fire("dl_tbs_down", window)
    window = _window(dl_tbs_bits=tbs[::-1].copy())
    assert not _fire("dl_tbs_down", window)


def test_rate_gap():
    app = np.full(N, 6e6)  # above the 5e6 TBS rate everywhere
    window = _window(ul_app_bitrate_bps=app)
    assert _fire("ul_rate_gap", window)


def test_rate_gap_ignores_idle_bins():
    app = np.zeros(N)
    tbs = np.zeros(N)
    window = _window(ul_app_bitrate_bps=app, ul_tbs_bitrate_bps=tbs)
    assert not _fire("ul_rate_gap", window)


def test_cross_traffic_threshold():
    other = np.full(N, 3.0)  # 15% of exp (20) -> below 20% threshold
    window = _window(dl_other_prbs=other)
    assert not _fire("dl_cross_traffic", window)
    other = np.full(N, 10.0)  # 50%
    window = _window(dl_other_prbs=other)
    assert _fire("dl_cross_traffic", window)


def test_channel_degrades():
    mcs = np.full(N, 22.0)
    window = _window(ul_mcs_mean=mcs)
    assert not _fire("ul_channel_degrades", window)
    mcs = np.full(N, 8.0)  # persistently poor
    window = _window(ul_mcs_mean=mcs)
    assert _fire("ul_channel_degrades", window)


def test_harq_retx_threshold():
    retx = np.zeros(N)
    retx[:10] = 1.0  # 10 total, at the default threshold of 20 -> no
    window = _window(ul_harq_retx=retx)
    assert not _fire("ul_harq_retx", window)
    retx[:30] = 1.0
    window = _window(ul_harq_retx=retx)
    assert _fire("ul_harq_retx", window)


def test_rlc_retx_any():
    retx = np.zeros(N)
    retx[5] = 1.0
    window = _window(dl_rlc_retx=retx)
    assert _fire("dl_rlc_retx", window)


def test_rrc_change_via_rnti():
    rnti = np.full(N, 17_000.0)
    rnti[50:] = 23_456.0
    window = _window(ul_rnti=rnti)
    assert _fire("rrc_change", window)


def test_rrc_change_via_gnb_events():
    events = np.zeros(N)
    events[10] = 1.0
    window = _window(rrc_events=events)
    assert _fire("rrc_change", window)
